// Shared fixture: generates a small TPC-H-like corpus in every format once
// per test binary and registers it with fresh engines on demand.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <random>

#include "src/core/query_engine.h"
#include "src/datagen/spam.h"
#include "src/datagen/tpch.h"
#include "src/storage/bincol_format.h"
#include "src/storage/binrow_format.h"
#include "src/storage/text_writers.h"

namespace proteus {
namespace testutil {

struct Corpus {
  std::string dir;
  RowTable lineitem;
  RowTable orders;
  RowTable denorm;
  RowTable spam;
  uint64_t num_orders = 60;

  static const Corpus& Get() {
    static Corpus c = Build();
    return c;
  }

 private:
  static Corpus Build() {
    Corpus c;
    // Per-process directory: test binaries run concurrently under `ctest -j`,
    // and a shared corpus dir would be rewritten by one binary while another
    // reads it mid-write.
    c.dir = ::testing::TempDir() + "/proteus_corpus_" + std::to_string(::getpid());
    std::filesystem::create_directories(c.dir);
    c.lineitem = datagen::GenLineitem(c.num_orders, 101);
    c.orders = datagen::GenOrders(c.num_orders, 102);
    c.denorm = datagen::Denormalize(c.orders, c.lineitem);
    c.spam = datagen::GenSpamJSON(80, 103);

    auto check = [](const Status& s) {
      ASSERT_TRUE(s.ok()) << s.ToString();
    };
    check(WriteBinaryColumnDir(c.dir + "/lineitem.bincol", c.lineitem));
    check(WriteBinaryColumnDir(c.dir + "/orders.bincol", c.orders));
    check(WriteBinaryRowFile(c.dir + "/lineitem.binrow", c.lineitem));
    check(WriteCSVFile(c.dir + "/lineitem.csv", c.lineitem));
    check(WriteCSVFile(c.dir + "/orders.csv", c.orders));
    check(WriteJSONFile(c.dir + "/lineitem.json", c.lineitem));
    check(WriteJSONFile(c.dir + "/orders.json", c.orders));
    JSONWriteOptions shuffled;
    shuffled.shuffle_field_order = true;
    check(WriteJSONFile(c.dir + "/lineitem_shuffled.json", c.lineitem, shuffled));
    check(WriteJSONFile(c.dir + "/denorm.json", c.denorm));
    check(WriteJSONFile(c.dir + "/spam.json", c.spam));
    return c;
  }
};

/// Registers the full corpus under canonical names:
/// lineitem_{bincol,binrow,csv,json,json_shuffled}, orders_{bincol,csv,json},
/// orders_denorm (JSON), spam (JSON).
inline void RegisterAll(QueryEngine* engine) {
  const Corpus& c = Corpus::Get();
  auto reg = [&](const std::string& name, DataFormat fmt, const std::string& path,
                 TypePtr type) {
    DatasetInfo info;
    info.name = name;
    info.format = fmt;
    info.path = path;
    info.type = std::move(type);
    ASSERT_TRUE(engine->RegisterDataset(info).ok()) << name;
  };
  reg("lineitem_bincol", DataFormat::kBinaryColumn, c.dir + "/lineitem.bincol",
      datagen::LineitemSchema());
  reg("orders_bincol", DataFormat::kBinaryColumn, c.dir + "/orders.bincol",
      datagen::OrdersSchema());
  reg("lineitem_binrow", DataFormat::kBinaryRow, c.dir + "/lineitem.binrow",
      datagen::LineitemSchema());
  reg("lineitem_csv", DataFormat::kCSV, c.dir + "/lineitem.csv", datagen::LineitemSchema());
  reg("orders_csv", DataFormat::kCSV, c.dir + "/orders.csv", datagen::OrdersSchema());
  reg("lineitem_json", DataFormat::kJSON, c.dir + "/lineitem.json",
      datagen::LineitemSchema());
  reg("lineitem_json_shuffled", DataFormat::kJSON, c.dir + "/lineitem_shuffled.json",
      datagen::LineitemSchema());
  reg("orders_json", DataFormat::kJSON, c.dir + "/orders.json", datagen::OrdersSchema());
  reg("orders_denorm", DataFormat::kJSON, c.dir + "/denorm.json",
      datagen::OrdersDenormSchema());
  reg("spam", DataFormat::kJSON, c.dir + "/spam.json", datagen::SpamJSONSchema());
}

/// Skewed join-key corpora for the partitioned-join tests, written once per
/// process alongside the main corpus:
///   zipf_orders     — 512 rows, o_orderkey Zipf(1.0) over [1, 64]: heavy
///                     duplication (rows/ndv ≈ 8) that trips the optimizer's
///                     skew test once stats are warm.
///   heavy_orders    — 512 rows, 448 of them o_orderkey = 7 and the rest
///                     distinct: the single-heavy-hitter shape.
///   nullkey_orders  — 64 rows with o_orderkey absent entirely: an all-null
///                     build side (only outer joins keep its rows).
///   skew_lineitem   — 384 probe rows, l_orderkey uniform over [1, 80] (some
///                     keys miss the build domain).
/// All use the TPC-H-like orders/lineitem schemas, deterministic seeds.
struct SkewCorpus {
  std::string dir;

  static const SkewCorpus& Get() {
    static SkewCorpus c = Build();
    return c;
  }

 private:
  static SkewCorpus Build() {
    SkewCorpus c;
    c.dir = Corpus::Get().dir;
    std::mt19937_64 rng(7);
    auto order_row = [](std::ofstream& f, int64_t key, int64_t i, double price) {
      f << "{\"o_orderkey\":" << key << ",\"o_custkey\":" << i % 13
        << ",\"o_totalprice\":" << price << ",\"o_shippriority\":" << i % 3
        << ",\"o_comment\":\"skew\"}\n";
    };
    {
      // Zipf over [1, 64]: P(k) ∝ 1/k, sampled by inverse CDF.
      std::vector<double> cdf(64);
      double sum = 0;
      for (int k = 0; k < 64; ++k) cdf[k] = (sum += 1.0 / (k + 1));
      std::uniform_real_distribution<double> u(0.0, sum);
      std::ofstream f(c.dir + "/zipf_orders.json");
      for (int64_t i = 0; i < 512; ++i) {
        double x = u(rng);
        int64_t key = 1;
        while (key < 64 && cdf[key - 1] < x) ++key;
        order_row(f, key, i, 100.25 + static_cast<double>(i % 97));
      }
    }
    {
      std::ofstream f(c.dir + "/heavy_orders.json");
      for (int64_t i = 0; i < 512; ++i) {
        int64_t key = i % 8 != 0 ? 7 : 100 + i;
        order_row(f, key, i, 50.5 + static_cast<double>(i % 31));
      }
    }
    {
      std::ofstream f(c.dir + "/nullkey_orders.json");
      for (int64_t i = 0; i < 64; ++i) {
        f << "{\"o_custkey\":" << i % 13 << ",\"o_totalprice\":" << 10.5 + i
          << ",\"o_shippriority\":" << i % 3 << ",\"o_comment\":\"nokey\"}\n";
      }
    }
    {
      std::uniform_int_distribution<int64_t> key(1, 80);
      std::ofstream f(c.dir + "/skew_lineitem.json");
      for (int64_t i = 0; i < 384; ++i) {
        f << "{\"l_orderkey\":" << key(rng) << ",\"l_linenumber\":" << i % 7
          << ",\"l_quantity\":" << 1.5 + i % 49 << ",\"l_extendedprice\":"
          << 900.75 + i << ",\"l_discount\":0.04,\"l_tax\":0.03,"
             "\"l_shipmode\":\"TRUCK\",\"l_comment\":\"probe\"}\n";
      }
    }
    return c;
  }
};

/// Registers the skewed corpora (JSON) under zipf_orders / heavy_orders /
/// nullkey_orders / skew_lineitem.
inline void RegisterSkewCorpus(QueryEngine* engine) {
  const SkewCorpus& c = SkewCorpus::Get();
  auto reg = [&](const std::string& name, const std::string& file, TypePtr type) {
    DatasetInfo info;
    info.name = name;
    info.format = DataFormat::kJSON;
    info.path = c.dir + "/" + file;
    info.type = std::move(type);
    ASSERT_TRUE(engine->RegisterDataset(info).ok()) << name;
  };
  reg("zipf_orders", "zipf_orders.json", datagen::OrdersSchema());
  reg("heavy_orders", "heavy_orders.json", datagen::OrdersSchema());
  reg("nullkey_orders", "nullkey_orders.json", datagen::OrdersSchema());
  reg("skew_lineitem", "skew_lineitem.json", datagen::LineitemSchema());
}

}  // namespace testutil
}  // namespace proteus
