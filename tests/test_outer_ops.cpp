// Tests for the outer variants of Table 1's operators (outer join, outer
// unnest) and for less-common monoids (and/or/set/list), built directly on
// the algebra (the SQL frontend does not expose outer ops).
#include <gtest/gtest.h>

#include "tests/engine_test_util.h"

namespace proteus {
namespace {

using testutil::Corpus;

class OuterOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<QueryEngine>();
    testutil::RegisterAll(engine_.get());
    // A dataset of orders with some keys outside lineitem's range, to make
    // outer joins produce unmatched rows.
    const Corpus& c = Corpus::Get();
    RowTable extra(datagen::OrdersSchema()->elem());
    for (size_t i = 0; i < 10; ++i) {
      extra.Append({Value::Int(static_cast<int64_t>(1000 + i)), Value::Int(1),
                    Value::Float(50.0), Value::Int(0), Value::Str("widow")});
    }
    for (size_t i = 0; i < 5; ++i) extra.Append(c.orders.row(i));
    std::string dir = c.dir + "/extra_orders.bincol";
    ASSERT_TRUE(WriteBinaryColumnDir(dir, extra).ok());
    ASSERT_TRUE(engine_
                    ->RegisterDataset({.name = "extra_orders",
                                       .format = DataFormat::kBinaryColumn,
                                       .path = dir,
                                       .type = datagen::OrdersSchema()})
                    .ok());
  }

  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(OuterOpsTest, OuterJoinPreservesUnmatchedBuildRows) {
  // OuterJoin(extra_orders, lineitem): the 10 synthetic keys have no
  // lineitems; an outer join must still emit them (with null right side).
  OpPtr scan_o = Operator::Scan("extra_orders", "o");
  OpPtr scan_l = Operator::Scan("lineitem_bincol", "l");
  ExprPtr pred = Expr::Bin(BinOp::kEq, Expr::Proj(Expr::Var("o"), "o_orderkey"),
                           Expr::Proj(Expr::Var("l"), "l_orderkey"));
  OpPtr join = Operator::Join(scan_o, scan_l, pred, /*outer=*/true);
  // Count rows where the lineitem side is absent: if l.l_orderkey is null
  // the predicate (l.l_orderkey < 0) = null = false, and NOT of it... use
  // count of all rows minus matched instead: count all emitted rows.
  OpPtr plan = Operator::Reduce(join, {{Monoid::kCount, nullptr, "n"}});

  auto r = engine_->ExecutePlan(plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Expected: sum over the 5 real orders of their lineitem counts + 10
  // unmatched widows emitted once each.
  const Corpus& c = Corpus::Get();
  std::map<int64_t, int64_t> per_order;
  for (const auto& row : c.lineitem.rows()) per_order[row[0].i()]++;
  int64_t expected = 10;
  for (size_t i = 0; i < 5; ++i) expected += per_order[c.orders.row(i)[0].i()];
  EXPECT_EQ(r->scalar().i(), expected);
}

TEST_F(OuterOpsTest, InnerJoinDropsUnmatchedBuildRows) {
  OpPtr scan_o = Operator::Scan("extra_orders", "o");
  OpPtr scan_l = Operator::Scan("lineitem_bincol", "l");
  ExprPtr pred = Expr::Bin(BinOp::kEq, Expr::Proj(Expr::Var("o"), "o_orderkey"),
                           Expr::Proj(Expr::Var("l"), "l_orderkey"));
  OpPtr inner = Operator::Reduce(Operator::Join(scan_o, scan_l, pred, false),
                                 {{Monoid::kCount, nullptr, "n"}});
  auto r = engine_->ExecutePlan(inner);
  ASSERT_TRUE(r.ok());
  const Corpus& c = Corpus::Get();
  std::map<int64_t, int64_t> per_order;
  for (const auto& row : c.lineitem.rows()) per_order[row[0].i()]++;
  int64_t expected = 0;
  for (size_t i = 0; i < 5; ++i) expected += per_order[c.orders.row(i)[0].i()];
  EXPECT_EQ(r->scalar().i(), expected);
}

TEST_F(OuterOpsTest, OuterUnnestEmitsEmptyCollections) {
  // orders_denorm may contain orders with empty lineitem arrays (orders with
  // keys not present — Denormalize gives them empty lists only if missing;
  // our generator gives every order >=1 lineitem, so build a plan where the
  // unnest predicate filters everything: outer unnest must still emit one
  // row per order with a null element).
  OpPtr scan = Operator::Scan("orders_denorm", "o");
  OpPtr unnest = Operator::Unnest(scan, {"o", "lineitems"}, "l",
                                  Expr::Bin(BinOp::kLt,
                                            Expr::Proj(Expr::Var("l"), "l_quantity"),
                                            Expr::Float(-1.0)),
                                  /*outer=*/false);
  OpPtr inner_plan = Operator::Reduce(unnest, {{Monoid::kCount, nullptr, "n"}});
  auto inner = engine_->ExecutePlan(inner_plan);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->scalar().i(), 0);  // inner unnest: nothing survives

  // Outer unnest with an always-false *filter on elements* still emits
  // nothing (the predicate embeds in the unnest), but an outer unnest over
  // genuinely empty collections emits the outer row once. Build such data:
  const Corpus& c = Corpus::Get();
  (void)c;
  OpPtr scan2 = Operator::Scan("orders_denorm", "o");
  OpPtr outer_unnest =
      Operator::Unnest(scan2, {"o", "lineitems"}, "l", nullptr, /*outer=*/true);
  OpPtr plan = Operator::Reduce(outer_unnest, {{Monoid::kCount, nullptr, "n"}});
  auto r = engine_->ExecutePlan(plan);
  ASSERT_TRUE(r.ok());
  // Every order has >=1 lineitem, so outer == inner here.
  size_t total = 0;
  for (const auto& row : Corpus::Get().denorm.rows()) total += row[3].list().size();
  EXPECT_EQ(r->scalar().i(), static_cast<int64_t>(total));
}

TEST_F(OuterOpsTest, AndOrMonoids) {
  // all/some monoids via the comprehension frontend.
  auto all = engine_->Execute(
      "for { l <- lineitem_bincol } yield all l.l_quantity > 0.0");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_TRUE(all->scalar().b());
  auto some = engine_->Execute(
      "for { l <- lineitem_bincol } yield some l.l_quantity > 49.9");
  ASSERT_TRUE(some.ok());
  // May be true or false depending on data; recompute.
  bool expected = false;
  for (const auto& row : Corpus::Get().lineitem.rows()) {
    expected |= row[2].f() > 49.9;
  }
  EXPECT_EQ(some->scalar().b(), expected);
  auto none = engine_->Execute(
      "for { l <- lineitem_bincol } yield some l.l_quantity > 50.0");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->scalar().b());
}

TEST_F(OuterOpsTest, SetMonoidDeduplicates) {
  auto r = engine_->Execute("for { l <- lineitem_bincol } yield set l.l_linenumber");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<int64_t> expected;
  for (const auto& row : Corpus::Get().lineitem.rows()) expected.insert(row[1].i());
  EXPECT_EQ(r->rows.size(), expected.size());
}

TEST_F(OuterOpsTest, ListMonoidKeepsDuplicates) {
  auto r = engine_->Execute(
      "for { l <- lineitem_bincol, l.l_orderkey < 5 } yield list l.l_linenumber");
  ASSERT_TRUE(r.ok());
  int64_t expected = 0;
  for (const auto& row : Corpus::Get().lineitem.rows()) {
    if (row[0].i() < 5) ++expected;
  }
  EXPECT_EQ(static_cast<int64_t>(r->rows.size()), expected);
}

}  // namespace
}  // namespace proteus
