// Sharded execution tests.
//
// The shard contract extends the morsel one: query results are *identical* —
// cell-for-cell, float bits and row order included — for every shard count,
// and for sharded vs unsharded execution, because every configuration folds
// the same global per-morsel partials in the same order. On top of that,
// every shard partial crosses a real serialization boundary (the
// PartialResult wire format through a ShardTransport), so the suite also
// round-trips the wire encoding property-style and checks the transport's
// bookkeeping.
#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "src/shard/coordinator.h"
#include "src/shard/partial_result.h"
#include "src/shard/transport.h"
#include "tests/engine_test_util.h"

namespace proteus {
namespace {

// Small morsels so the ~240-row test corpus splits into many ranges and
// every shard count in {1, 2, 4} receives a non-trivial slice.
constexpr uint64_t kTestMorselRows = 16;

std::unique_ptr<QueryEngine> MakeEngine(int num_shards, int num_threads = 1,
                                        bool caching = false) {
  EngineOptions opts;
  opts.mode = ExecMode::kInterp;
  opts.num_threads = num_threads;
  opts.num_shards = num_shards;
  opts.morsel_rows = kTestMorselRows;
  opts.cache_policy.enabled = caching;
  auto engine = std::make_unique<QueryEngine>(opts);
  testutil::RegisterAll(engine.get());
  return engine;
}

/// Cell-for-cell equality: same columns, same row order, exact values
/// (float bits included — Value::Equals compares doubles exactly).
void ExpectIdentical(const QueryResult& a, const QueryResult& b, const std::string& ctx) {
  ASSERT_EQ(a.columns, b.columns) << ctx;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << ctx;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << ctx << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_TRUE(a.rows[r][c].Equals(b.rows[r][c]))
          << ctx << " row " << r << " col " << c << ": " << a.rows[r][c].ToString()
          << " vs " << b.rows[r][c].ToString();
    }
  }
}

/// Scans, selections, joins, and group-bys over JSON, CSV, and binary
/// datasets — the full format × operator matrix the acceptance criteria
/// name. Float aggregates are deliberate: bit-identity across shard counts
/// requires the fold shape to be invariant, not just the math.
const std::vector<std::string>& Workload() {
  static const std::vector<std::string> queries = {
      // Scans / projections (collection monoid: row order must be stable).
      "SELECT l_orderkey, l_quantity FROM lineitem_json WHERE l_orderkey < 1000000",
      "SELECT l_orderkey, l_extendedprice FROM lineitem_bincol WHERE l_orderkey < 1000000",
      // Selections + aggregates over every format family.
      "SELECT count(*), max(l_quantity), sum(l_tax) FROM lineitem_json WHERE l_orderkey < 30",
      "SELECT count(*), sum(l_extendedprice) FROM lineitem_csv WHERE l_orderkey < 40",
      "SELECT min(l_extendedprice * (1.0 - l_discount)) FROM lineitem_bincol",
      "SELECT sum(l_extendedprice) FROM lineitem_binrow WHERE l_linenumber = 2",
      // Joins (each shard builds its own radix table, probes its slice).
      "SELECT count(*) FROM orders_bincol o JOIN lineitem_bincol l "
      "ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 25",
      "SELECT count(*), max(o.o_totalprice) FROM orders_json o JOIN lineitem_json l "
      "ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 40",
      // Group-bys (per-morsel group tables serialized per shard, merged in
      // global morsel order).
      "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_bincol "
      "WHERE l_orderkey < 30 GROUP BY l_linenumber",
      "SELECT l_linenumber, count(*), max(l_quantity) FROM lineitem_json "
      "GROUP BY l_linenumber",
      "SELECT l_linenumber, count(*), sum(l_tax) FROM lineitem_csv "
      "GROUP BY l_linenumber",
      // Unnest over nested JSON collections.
      "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l "
      "WHERE l.l_quantity > 25.0",
  };
  return queries;
}

TEST(ShardedExecution, ResultsIdenticalAcrossShardCounts) {
  auto baseline_engine = MakeEngine(/*num_shards=*/0);
  for (const auto& q : Workload()) {
    auto baseline = baseline_engine->Execute(q);
    ASSERT_TRUE(baseline.ok()) << q << "\n" << baseline.status().ToString();
    for (int shards : {1, 2, 4}) {
      auto engine = MakeEngine(shards);
      auto r = engine->Execute(q);
      ASSERT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
      ExpectIdentical(*baseline, *r, q + " @ " + std::to_string(shards) + " shards");
      EXPECT_GT(engine->telemetry().shards_used, 0) << q;
      EXPECT_GT(engine->telemetry().bytes_exchanged, 0u)
          << q << ": shard partials must cross the wire";
    }
  }
}

TEST(ShardedExecution, PartitionedJoinsIdenticalAcrossShardCounts) {
  // Partitioned probe layout composed with the shard executor: each shard
  // builds its own (partitioned) table and probes its morsel slice; results
  // must stay cell-identical across shard counts, skewed corpora included.
  auto make_engine = [](int shards, JoinStrategyOverride strat, ExecMode mode) {
    EngineOptions opts;
    opts.mode = mode;
    opts.num_shards = shards;
    opts.morsel_rows = kTestMorselRows;
    opts.optimizer.join_strategy = strat;
    auto engine = std::make_unique<QueryEngine>(opts);
    testutil::RegisterAll(engine.get());
    testutil::RegisterSkewCorpus(engine.get());
    return engine;
  };
  const std::vector<std::string> queries = {
      "SELECT count(*), sum(o.o_totalprice) FROM zipf_orders o "
      "JOIN skew_lineitem l ON o.o_orderkey = l.l_orderkey",
      "SELECT count(*), max(l.l_extendedprice) FROM heavy_orders o "
      "JOIN skew_lineitem l ON o.o_orderkey = l.l_orderkey WHERE l.l_linenumber < 5",
  };
  for (const auto& q : queries) {
    auto baseline = make_engine(0, JoinStrategyOverride::kForceShared,
                                ExecMode::kInterp)->Execute(q);
    ASSERT_TRUE(baseline.ok()) << q << "\n" << baseline.status().ToString();
    for (JoinStrategyOverride strat :
         {JoinStrategyOverride::kForceShared, JoinStrategyOverride::kForcePartitioned}) {
      for (ExecMode mode : {ExecMode::kInterp, ExecMode::kJIT}) {
        for (int shards : {1, 2, 4}) {
          auto engine = make_engine(shards, strat, mode);
          auto r = engine->Execute(q);
          ASSERT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
          ExpectIdentical(*baseline, *r,
                          q + " @ " + std::to_string(shards) + " shards, strat=" +
                              std::to_string(static_cast<int>(strat)));
        }
      }
    }
  }
}

TEST(ShardedExecution, ShardsComposeWithMorselWorkers) {
  // shards × num_threads: each shard drives its own morsel pool; neither
  // knob may change a single cell.
  auto baseline = MakeEngine(0)->Execute(Workload()[2]);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (int threads : {1, 4}) {
    auto engine = MakeEngine(/*num_shards=*/2, threads);
    for (const auto& q : Workload()) {
      auto b = MakeEngine(0)->Execute(q);
      auto r = engine->Execute(q);
      ASSERT_TRUE(b.ok()) << q << "\n" << b.status().ToString();
      ASSERT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
      ExpectIdentical(*b, *r, q + " @ 2 shards x " + std::to_string(threads) + " threads");
    }
  }
}

TEST(ShardedExecution, MatchesJitOracle) {
  // Cross-engine sanity: 4-shard execution agrees (as a multiset, with
  // float tolerance) with the default single-threaded JIT engine.
  EngineOptions jit_opts;
  QueryEngine jit(jit_opts);
  testutil::RegisterAll(&jit);
  auto sharded = MakeEngine(4);
  for (const auto& q : Workload()) {
    auto a = jit.Execute(q);
    auto b = sharded->Execute(q);
    ASSERT_TRUE(a.ok()) << q << "\n" << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q << "\n" << b.status().ToString();
    EXPECT_TRUE(a->EqualsUnordered(*b, 1e-6)) << q << "\njit:\n"
                                              << a->ToString() << "\nsharded:\n"
                                              << b->ToString();
  }
}

TEST(ShardedExecution, TelemetryReportsShardsAndBytes) {
  auto engine = MakeEngine(4);
  auto r = engine->Execute("SELECT count(*) FROM lineitem_json WHERE l_orderkey < 1000000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryTelemetry& t = engine->telemetry();
  EXPECT_FALSE(t.used_jit);
  EXPECT_EQ(t.shards_used, 4) << "corpus splits into >= 4 morsels, so all shards run";
  EXPECT_GT(t.bytes_exchanged, 0u);
  EXPECT_GT(t.morsels, 1u);
  EXPECT_GE(t.threads_used, 1);
}

TEST(ShardedExecution, SingleShardStillCrossesTheWire) {
  // num_shards = 1 exercises the full serialization boundary — useful both
  // as a smoke test for the wire format and as the degenerate case of the
  // identity guarantee.
  auto engine = MakeEngine(1);
  auto r = engine->Execute(Workload()[0]);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(engine->telemetry().shards_used, 1);
  EXPECT_GT(engine->telemetry().bytes_exchanged, 0u);
}

TEST(ShardedExecution, NonShardablePlansKeepTheirNormalPath) {
  // Outer joins need a global unmatched-drain, so the coordinator declines
  // them; the engine answers through the regular (morsel-parallel) path
  // with shard telemetry zeroed.
  auto make_plan = [] {
    OpPtr scan_o = Operator::Scan("orders_json", "o");
    OpPtr scan_l = Operator::Scan("lineitem_json", "l");
    ExprPtr pred = Expr::Bin(BinOp::kEq, Expr::Proj(Expr::Var("o"), "o_orderkey"),
                             Expr::Proj(Expr::Var("l"), "l_orderkey"));
    OpPtr join = Operator::Join(scan_o, scan_l, pred, /*outer=*/true);
    return Operator::Reduce(join, {{Monoid::kCount, nullptr, "n"}});
  };
  auto unsharded = MakeEngine(0)->ExecutePlan(make_plan());
  auto engine = MakeEngine(4);
  auto sharded = engine->ExecutePlan(make_plan());
  ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectIdentical(*unsharded, *sharded, "outer join under num_shards=4");
  EXPECT_EQ(engine->telemetry().shards_used, 0);
  EXPECT_EQ(engine->telemetry().bytes_exchanged, 0u);
}

TEST(ShardedExecution, ComposesWithCaching) {
  // Cache population happens before routing; the rewritten CacheScan leaf
  // shards like any other splittable scan.
  auto baseline_engine = MakeEngine(0, 1, /*caching=*/true);
  auto sharded_engine = MakeEngine(2, 1, /*caching=*/true);
  const std::string q =
      "SELECT count(*), sum(l_extendedprice) FROM lineitem_csv WHERE l_orderkey < 40";
  for (int round = 0; round < 2; ++round) {  // cold build, then cache hit
    auto a = baseline_engine->Execute(q);
    auto b = sharded_engine->Execute(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectIdentical(*a, *b, "cached CSV aggregate, round " + std::to_string(round));
  }
  EXPECT_TRUE(sharded_engine->telemetry().used_cache);
  EXPECT_GT(sharded_engine->telemetry().shards_used, 0);
}

// ---------------------------------------------------------------------------
// PartialResult wire format
// ---------------------------------------------------------------------------

/// Round-trips an aggregator and checks it is observationally identical:
/// same Final() now, and same Final() after merging the same extra partial
/// (the merge exercises internal state — int/float promotion flags, seen
/// bits — that Final() alone might mask).
void ExpectAggregatorRoundTrips(const Aggregator& a, const Aggregator& extra) {
  WireWriter w;
  a.Serialize(&w);
  std::string bytes = w.Take();
  WireReader r(bytes);
  auto back = Aggregator::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(r.AtEnd());
  EXPECT_TRUE(a.Final().Equals(back->Final()))
      << a.Final().ToString() << " vs " << back->Final().ToString();
  Aggregator merged_orig = a;
  Aggregator merged_back = *back;
  merged_orig.Merge(extra);
  merged_back.Merge(extra);
  EXPECT_TRUE(merged_orig.Final().Equals(merged_back.Final()))
      << merged_orig.Final().ToString() << " vs " << merged_back.Final().ToString();
}

Value RandomValue(std::mt19937* rng) {
  switch ((*rng)() % 4) {
    case 0: return Value::Int(static_cast<int64_t>((*rng)()) - (1 << 30));
    case 1: return Value::Float(std::ldexp(static_cast<double>((*rng)()), -16) - 1000.0);
    case 2: return Value::Str("s" + std::to_string((*rng)() % 1000));
    default: return Value::Boolean((*rng)() % 2 == 0);
  }
}

TEST(PartialResultWire, AggregatorRoundTripProperty) {
  const std::vector<Monoid> monoids = {Monoid::kSum, Monoid::kCount, Monoid::kMax,
                                       Monoid::kMin, Monoid::kAnd, Monoid::kOr,
                                       Monoid::kBag, Monoid::kList, Monoid::kSet};
  for (uint32_t seed = 0; seed < 25; ++seed) {
    std::mt19937 rng(seed);
    for (Monoid m : monoids) {
      Aggregator a(m);
      Aggregator extra(m);
      const int adds = static_cast<int>(rng() % 6);  // 0 adds = zero element
      for (int i = 0; i < adds; ++i) {
        Value v;
        switch (m) {
          case Monoid::kAnd:
          case Monoid::kOr: v = Value::Boolean(rng() % 2 == 0); break;
          case Monoid::kSum: v = rng() % 2 == 0 ? Value::Int(static_cast<int64_t>(rng() % 100))
                                                : Value::Float(0.25 * static_cast<double>(rng() % 64));
            break;
          case Monoid::kMax:
          case Monoid::kMin: v = rng() % 2 == 0 ? Value::Int(static_cast<int64_t>(rng() % 100))
                                                : Value::Int(-static_cast<int64_t>(rng() % 100));
            break;
          default: v = RandomValue(&rng); break;
        }
        a.Add(v);
        extra.Add(v);
      }
      // Collections also carry nested records across the wire.
      if (m == Monoid::kBag || m == Monoid::kList) {
        a.Add(Value::MakeRecord({"k", "vals"},
                                {Value::Int(7), Value::MakeList({Value::Float(1.5),
                                                                 Value::Null()})}));
      }
      ExpectAggregatorRoundTrips(a, extra);
    }
  }
}

TEST(PartialResultWire, GroupTableRoundTrip) {
  // A real Nest operator drives AddRow; the reconstructed table must
  // produce the same group records in the same first-appearance order, and
  // keep merging correctly.
  OpPtr scan = Operator::Scan("d", "x");
  ExprPtr by = Expr::Proj(Expr::Var("x"), "k");
  OpPtr nest = Operator::Nest(
      scan, by, "k",
      {{Monoid::kCount, nullptr, "c"}, {Monoid::kSum, Expr::Proj(Expr::Var("x"), "v"), "s"}});

  auto row = [](int64_t k, double v) {
    EvalEnv env;
    env["x"] = Value::MakeRecord({"k", "v"}, {Value::Int(k), Value::Float(v)});
    return env;
  };
  GroupTable t;
  t.count_bytes = false;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(t.AddRow(*nest, row(i % 7, 0.5 * i)).ok());
  }

  WireWriter w;
  t.Serialize(&w);
  std::string bytes = w.Take();
  WireReader r(bytes);
  auto back = GroupTable::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(r.AtEnd());
  ASSERT_EQ(back->keys.size(), t.keys.size());
  for (size_t g = 0; g < t.keys.size(); ++g) {
    EXPECT_TRUE(t.GroupRecord(*nest, g).Equals(back->GroupRecord(*nest, g)))
        << "group " << g;
  }

  // Merging new rows into the reconstructed table must find existing groups
  // (the rebuilt hash index) rather than duplicating them.
  GroupTable more;
  more.count_bytes = false;
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(more.AddRow(*nest, row(i % 7, 1.0)).ok());
  }
  GroupTable expect = t;      // copy
  GroupTable more_copy = more;
  expect.MergeFrom(*nest, std::move(more_copy));
  back->MergeFrom(*nest, std::move(more));
  ASSERT_EQ(back->keys.size(), expect.keys.size());
  for (size_t g = 0; g < expect.keys.size(); ++g) {
    EXPECT_TRUE(expect.GroupRecord(*nest, g).Equals(back->GroupRecord(*nest, g)))
        << "merged group " << g;
  }
}

TEST(PartialResultWire, PartialsEnvelopeRoundTrip) {
  PlanPartials p;
  p.nest = false;
  for (int m = 0; m < 3; ++m) {
    std::vector<Aggregator> aggs;
    aggs.emplace_back(Monoid::kCount);
    aggs.emplace_back(Monoid::kSum);
    aggs[0].Add(Value::Int(1));
    aggs[1].Add(Value::Float(1.25 * m));
    p.agg_morsels.push_back(std::move(aggs));
  }
  std::string bytes = PartialResult::FromPartials(std::move(p)).Serialize();
  auto back = PartialResult::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->kind, PartialResult::Kind::kAggregates);
  ASSERT_EQ(back->partials.agg_morsels.size(), 3u);
  EXPECT_EQ(back->partials.agg_morsels[2][0].Final().i(), 1);
  EXPECT_TRUE(back->partials.agg_morsels[2][1].Final().Equals(Value::Float(2.5)));
}

TEST(PartialResultWire, RowBatchRoundTrip) {
  QueryResult rows;
  rows.columns = {"a", "b"};
  rows.rows.push_back({Value::Int(1), Value::Str("x")});
  rows.rows.push_back({Value::Null(), Value::MakeList({Value::Int(2), Value::Float(3.5)})});
  std::string bytes = PartialResult::FromRows(rows).Serialize();
  auto back = PartialResult::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->kind, PartialResult::Kind::kRows);
  ASSERT_EQ(back->rows.columns, rows.columns);
  ASSERT_EQ(back->rows.rows.size(), rows.rows.size());
  for (size_t i = 0; i < rows.rows.size(); ++i) {
    for (size_t c = 0; c < rows.rows[i].size(); ++c) {
      EXPECT_TRUE(rows.rows[i][c].Equals(back->rows.rows[i][c])) << i << "," << c;
    }
  }
}

TEST(PartialResultWire, RejectsMalformedPayloads) {
  EXPECT_FALSE(PartialResult::Deserialize("").ok());
  EXPECT_FALSE(PartialResult::Deserialize("junk bytes").ok());
  // Valid payload with the tail chopped off must fail cleanly, not crash.
  PlanPartials p;
  p.nest = false;
  std::vector<Aggregator> aggs;
  aggs.emplace_back(Monoid::kSum);
  aggs[0].Add(Value::Float(1.5));
  p.agg_morsels.push_back(std::move(aggs));
  std::string bytes = PartialResult::FromPartials(std::move(p)).Serialize();
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{5}}) {
    EXPECT_FALSE(PartialResult::Deserialize(std::string_view(bytes).substr(0, cut)).ok())
        << "cut at " << cut;
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(PartialResult::Deserialize(bytes + "x").ok());
}

// The full malformed-payload matrix across every PartialResult kind:
// EVERY proper prefix is a truncation and must fail cleanly, and trailing
// garbage after a complete payload is rejected (decode must consume the
// envelope exactly — the strict !AtEnd() rule). Length prefixes live at the
// front of each section, so no proper prefix can parse as a complete
// payload of its own.
TEST(PartialResultWire, MalformedMatrixAcrossAllKinds) {
  std::vector<std::pair<std::string, std::string>> payloads;

  {
    PlanPartials p;
    p.nest = false;
    for (int m = 0; m < 2; ++m) {
      std::vector<Aggregator> aggs;
      aggs.emplace_back(Monoid::kSum);
      aggs.emplace_back(Monoid::kCount);
      aggs[0].Add(Value::Float(1.5 * (m + 1)));
      aggs[1].Add(Value::Int(m));
      p.agg_morsels.push_back(std::move(aggs));
    }
    payloads.emplace_back("kAggregates",
                          PartialResult::FromPartials(std::move(p)).Serialize());
  }
  {
    OpPtr scan = Operator::Scan("d", "x");
    ExprPtr by = Expr::Proj(Expr::Var("x"), "k");
    OpPtr nest = Operator::Nest(
        scan, by, "k",
        {{Monoid::kCount, nullptr, "c"}, {Monoid::kSum, Expr::Proj(Expr::Var("x"), "v"), "s"}});
    GroupTable t;
    t.count_bytes = false;
    for (int i = 0; i < 12; ++i) {
      EvalEnv env;
      env["x"] = Value::MakeRecord({"k", "v"}, {Value::Int(i % 3), Value::Float(0.25 * i)});
      ASSERT_TRUE(t.AddRow(*nest, env).ok());
    }
    PlanPartials p;
    p.nest = true;
    p.group_morsels.push_back(std::move(t));
    payloads.emplace_back("kGroups",
                          PartialResult::FromPartials(std::move(p)).Serialize());
  }
  {
    QueryResult rows;
    rows.columns = {"a", "b"};
    rows.rows.push_back({Value::Int(7), Value::Str("hello")});
    rows.rows.push_back({Value::Null(), Value::MakeList({Value::Float(2.5)})});
    payloads.emplace_back("kRows", PartialResult::FromRows(rows).Serialize());
  }

  for (const auto& [kind, bytes] : payloads) {
    ASSERT_TRUE(PartialResult::Deserialize(bytes).ok()) << kind;
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(PartialResult::Deserialize(std::string_view(bytes).substr(0, cut)).ok())
          << kind << " truncated at " << cut;
    }
    EXPECT_FALSE(PartialResult::Deserialize(bytes + '\0').ok()) << kind;
    EXPECT_FALSE(PartialResult::Deserialize(bytes + "garbage").ok()) << kind;
  }
}

TEST(PartialResultWire, RejectsDeeplyNestedValues) {
  // A crafted chain of single-element list headers passes every length
  // check; the reader must bail with InvalidArgument at its depth bound
  // instead of recursing until the stack overflows.
  WireWriter w;
  for (int i = 0; i < 100000; ++i) {
    w.PutU8(6);   // list tag (wire.cpp kTagList)
    w.PutU64(1);  // one nested element
  }
  w.PutU8(0);  // innermost: null
  std::string bytes = w.Take();
  WireReader r(bytes);
  auto v = r.ReadValue();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);

  // Nesting at the bound still round-trips.
  Value nested = Value::Int(1);
  for (int i = 0; i < WireReader::kMaxValueDepth - 1; ++i) nested = Value::MakeList({nested});
  WireWriter ok;
  ok.PutValue(nested);
  std::string ok_bytes = ok.Take();
  WireReader ok_reader(ok_bytes);
  auto back = ok_reader.ReadValue();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->Equals(nested));
}

TEST(ShardedExecution, CoordinatorRejectsMismatchedPartials) {
  // The wire format is the coordinator's trust boundary: a wire-valid
  // payload whose aggregate vectors don't match the plan's outputs — wrong
  // arity, wrong monoid — must be rejected before the merge, not crash it.
  // Corrupt one shard's payload in flight.
  class CorruptingTransport : public ShardTransport {
   public:
    explicit CorruptingTransport(std::function<void(PartialResult*)> corrupt)
        : corrupt_(std::move(corrupt)) {}
    Status Send(int shard_id, std::string bytes) override {
      return inner_.Send(shard_id, std::move(bytes));
    }
    Result<std::string> Collect(int shard_id) override {
      PROTEUS_ASSIGN_OR_RETURN(std::string bytes, inner_.Collect(shard_id));
      PROTEUS_ASSIGN_OR_RETURN(PartialResult partial, PartialResult::Deserialize(bytes));
      if (shard_id == 0) corrupt_(&partial);
      return partial.Serialize();
    }
    uint64_t bytes_exchanged() const override { return inner_.bytes_exchanged(); }

   private:
    std::function<void(PartialResult*)> corrupt_;
    LoopbackTransport inner_;
  };

  auto engine = MakeEngine(0);
  ExecContext ctx;
  ctx.catalog = &engine->catalog();
  ctx.plugins = &engine->plugins();
  ctx.caches = &engine->caches();
  ctx.morsel_rows = kTestMorselRows;

  auto make_plan = [] {
    OpPtr scan = Operator::Scan("lineitem_json", "l");
    return Operator::Reduce(scan, {{Monoid::kCount, nullptr, "n"},
                                   {Monoid::kMax, Expr::Proj(Expr::Var("l"), "l_quantity"),
                                    "m"}});
  };
  struct Case {
    const char* needle;
    std::function<void(PartialResult*)> corrupt;
  };
  const std::vector<Case> cases = {
      {"arity",
       [](PartialResult* p) {
         if (!p->partials.agg_morsels.empty()) p->partials.agg_morsels[0].pop_back();
       }},
      {"monoid",
       [](PartialResult* p) {
         if (!p->partials.agg_morsels.empty()) {
           p->partials.agg_morsels[0][1] = Aggregator(Monoid::kSum);  // plan says kMax
         }
       }},
  };
  for (const Case& c : cases) {
    ShardCoordinator coordinator(ctx, /*num_shards=*/2, /*threads_per_shard=*/1);
    CorruptingTransport transport(c.corrupt);
    ShardExecStats stats;
    auto r = coordinator.Run(make_plan(), &transport, &stats);
    ASSERT_FALSE(r.ok()) << "mismatched " << c.needle << " must be rejected";
    EXPECT_NE(r.status().message().find(c.needle), std::string::npos)
        << r.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// LoopbackTransport
// ---------------------------------------------------------------------------

TEST(LoopbackTransport, SendCollectAndAccounting) {
  LoopbackTransport t;
  ASSERT_TRUE(t.Send(0, "abcd").ok());
  ASSERT_TRUE(t.Send(1, "efghij").ok());
  EXPECT_EQ(t.bytes_exchanged(), 10u);
  EXPECT_EQ(t.Send(0, "dup").code(), StatusCode::kAlreadyExists);
  auto a = t.Collect(0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "abcd");
  EXPECT_EQ(t.Collect(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(t.Collect(7).status().code(), StatusCode::kNotFound);
  auto b = t.Collect(1);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "efghij");
  // bytes_exchanged is cumulative (telemetry), not a queue depth.
  EXPECT_EQ(t.bytes_exchanged(), 10u);
}

}  // namespace
}  // namespace proteus
