// Edge-case tests: optimizer corner cases, lexer robustness, calculus
// printing, and telemetry/fallback behaviour.
#include <gtest/gtest.h>

#include "src/parser/lexer.h"
#include "src/parser/parser.h"
#include "tests/engine_test_util.h"

namespace proteus {
namespace {

TEST(Lexer, TokenKinds) {
  auto toks = Lex("for { x <- ds, x.a <= 3.5e2, y <> 'str' } yield count");
  ASSERT_TRUE(toks.ok()) << toks.status().ToString();
  // spot checks
  EXPECT_TRUE((*toks)[0].Is("for"));
  EXPECT_TRUE((*toks)[0].Is("FOR"));  // case-insensitive keyword match
  bool has_arrow = false, has_le = false, has_ne = false, has_float = false;
  for (const auto& t : *toks) {
    has_arrow |= t.kind == TokKind::kArrow;
    has_le |= t.kind == TokKind::kLe;
    has_ne |= t.kind == TokKind::kNe;
    has_float |= t.kind == TokKind::kFloat && t.float_val == 350.0;
  }
  EXPECT_TRUE(has_arrow);
  EXPECT_TRUE(has_le);
  EXPECT_TRUE(has_ne);
  EXPECT_TRUE(has_float);
}

TEST(Lexer, Errors) {
  EXPECT_FALSE(Lex("select 'unterminated").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
  EXPECT_FALSE(Lex("a # b").ok());
}

TEST(Lexer, NegativeAndScientificNumbers) {
  auto toks = Lex("-5 1e-3 2.5E+4");
  ASSERT_TRUE(toks.ok());
  // "-5" lexes as minus then int (unary minus handled by the parser).
  EXPECT_EQ((*toks)[0].kind, TokKind::kMinus);
  EXPECT_EQ((*toks)[1].int_val, 5);
  EXPECT_DOUBLE_EQ((*toks)[2].float_val, 1e-3);
  EXPECT_DOUBLE_EQ((*toks)[3].float_val, 2.5e4);
}

class EdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<QueryEngine>();
    testutil::RegisterAll(engine_.get());
  }
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(EdgeTest, ConstantFalsePredicateShortCircuits) {
  auto r = engine_->Execute("SELECT count(*) FROM lineitem_bincol WHERE 1 > 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->scalar().i(), 0);
}

TEST_F(EdgeTest, ConstantTruePredicateDropsSelect) {
  auto r = engine_->Execute(
      "for { l <- lineitem_bincol, 1 < 2 } yield count");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->scalar().i(),
            static_cast<int64_t>(testutil::Corpus::Get().lineitem.num_rows()));
  // The folded-away predicate leaves a plan with no Select at all.
  EXPECT_EQ(engine_->telemetry().plan.find("Select"), std::string::npos)
      << engine_->telemetry().plan;
}

TEST_F(EdgeTest, CrossProductWithoutKeysCompilesToNestedLoop) {
  // No equi predicate: the JIT generates a nested loop over the frozen
  // build rows — no interpreter fallback anymore.
  auto r = engine_->Execute(
      "SELECT count(*) FROM orders_bincol o JOIN orders_json oj ON "
      "o.o_totalprice > oj.o_totalprice WHERE o.o_orderkey < 4 and oj.o_orderkey < 4");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(engine_->telemetry().used_jit);
  EXPECT_TRUE(engine_->telemetry().fallback_reason.empty())
      << engine_->telemetry().fallback_reason;
  // Oracle.
  const auto& orders = testutil::Corpus::Get().orders;
  int64_t expected = 0;
  for (const auto& a : orders.rows()) {
    for (const auto& b : orders.rows()) {
      if (a[0].i() < 4 && b[0].i() < 4 && a[2].f() > b[2].f()) ++expected;
    }
  }
  EXPECT_EQ(r->scalar().i(), expected);
}

TEST_F(EdgeTest, SelfJoinDistinctBindings) {
  auto r = engine_->Execute(
      "SELECT count(*) FROM orders_bincol a JOIN orders_json b ON "
      "a.o_orderkey = b.o_orderkey WHERE a.o_orderkey < 10");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->scalar().i(), 10);
}

TEST_F(EdgeTest, DuplicateBindingRejected) {
  auto r = engine_->Execute(
      "for { x <- lineitem_bincol, x <- orders_bincol } yield count");
  EXPECT_FALSE(r.ok());
}

TEST_F(EdgeTest, GroupByWithPredicateOnAllGroupsGone) {
  auto r = engine_->Execute(
      "SELECT l_linenumber, count(*) FROM lineitem_bincol WHERE l_orderkey < 0 "
      "GROUP BY l_linenumber");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 0u);
}

TEST_F(EdgeTest, ExpressionInGroupAggregates) {
  const auto& li = testutil::Corpus::Get().lineitem;
  std::map<int64_t, double> expected;
  for (const auto& row : li.rows()) {
    expected[row[1].i()] += row[3].f() * (1.0 - row[4].f());
  }
  auto r = engine_->Execute(
      "SELECT l_linenumber, sum(l_extendedprice * (1.0 - l_discount)) "
      "FROM lineitem_bincol GROUP BY l_linenumber");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), expected.size());
  for (const auto& row : r->rows) {
    EXPECT_NEAR(row[1].AsFloat(), expected.at(row[0].i()), 1e-6);
  }
}

TEST_F(EdgeTest, ComprehensionToStringRoundTripsThroughParser) {
  auto c1 = ParseComprehension(
      "for { s <- spam, k <- s.classes, k.label > 3 } yield sum k.label");
  ASSERT_TRUE(c1.ok());
  std::string printed = c1->ToString();
  auto c2 = ParseComprehension(printed);
  ASSERT_TRUE(c2.ok()) << printed;
  EXPECT_EQ(c2->ToString(), printed);
}

TEST_F(EdgeTest, TelemetryPlanPrintsStableShape) {
  ASSERT_TRUE(
      engine_->Execute("SELECT count(*) FROM lineitem_csv WHERE l_orderkey < 5").ok());
  const std::string& plan = engine_->telemetry().plan;
  EXPECT_NE(plan.find("Reduce"), std::string::npos);
  EXPECT_NE(plan.find("Scan lineitem_csv"), std::string::npos);
  EXPECT_NE(plan.find("fields=[l_orderkey]"), std::string::npos);
}

TEST_F(EdgeTest, RegisterErrors) {
  QueryEngine e;
  // Empty name.
  EXPECT_FALSE(e.RegisterDataset({.name = "", .format = DataFormat::kCSV,
                                  .path = "/x", .type = datagen::OrdersSchema()})
                   .ok());
  // Non-collection type.
  DatasetInfo bad{.name = "b", .format = DataFormat::kCSV, .path = "/x",
                  .type = Type::Int64()};
  EXPECT_FALSE(e.RegisterDataset(bad).ok());
  // Duplicate.
  ASSERT_TRUE(e.RegisterDataset({.name = "d", .format = DataFormat::kCSV, .path = "/x",
                                 .type = datagen::OrdersSchema()})
                  .ok());
  EXPECT_FALSE(e.RegisterDataset({.name = "d", .format = DataFormat::kCSV, .path = "/x",
                                  .type = datagen::OrdersSchema()})
                   .ok());
}

TEST_F(EdgeTest, MissingFileSurfacesIOError) {
  QueryEngine e;
  ASSERT_TRUE(e.RegisterDataset({.name = "ghost", .format = DataFormat::kCSV,
                                 .path = "/nonexistent/ghost.csv",
                                 .type = datagen::OrdersSchema()})
                  .ok());
  auto r = e.Execute("SELECT count(*) FROM ghost");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace proteus
