// Query server tests: the serving shell over the reentrant engine.
//
// The contracts under test, in order of importance:
//   - N concurrent clients against one engine get exactly the rows a direct
//     serial ExecutePlan produces — cell-identical, telemetry per query;
//   - the compiled-query cache is shared across clients (a repeated query
//     reports jit_cache_hit without recompiling);
//   - a kCancel frame stops the query at its next morsel boundary and the
//     server answers kCancelled (telemetry cancelled = true) and stays
//     healthy;
//   - admission overflow answers with an explicit kRejected frame — never a
//     hang — and the connection keeps working afterwards;
//   - the frame codecs are strict: truncation and trailing garbage are
//     rejected, a malformed body gets a kError response without killing the
//     session.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/serve/admission.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "tests/engine_test_util.h"

namespace proteus {
namespace {

using serve::AdmissionGate;
using serve::Frame;
using serve::FrameType;
using serve::QueryServer;
using serve::ServeClient;
using serve::ServerOptions;

/// A workload that exercises JIT aggregates, joins, and group-bys across
/// formats — all morsel-parallelizable, so concurrent queries genuinely
/// interleave on the shared scheduler.
const std::vector<std::string>& ServeWorkload() {
  static const std::vector<std::string> queries = {
      "SELECT count(*), max(l_quantity), sum(l_tax) FROM lineitem_json WHERE l_orderkey < 30",
      "SELECT count(*), sum(l_extendedprice) FROM lineitem_csv WHERE l_orderkey < 40",
      "SELECT min(l_extendedprice * (1.0 - l_discount)) FROM lineitem_bincol",
      "SELECT count(*) FROM orders_bincol o JOIN lineitem_bincol l "
      "ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 25",
      "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_bincol "
      "WHERE l_orderkey < 30 GROUP BY l_linenumber",
      "SELECT sum(l_extendedprice) FROM lineitem_binrow WHERE l_linenumber = 2",
  };
  return queries;
}

std::unique_ptr<QueryEngine> MakeServeEngine(EngineOptions opts = {}) {
  if (opts.num_threads == 1) opts.num_threads = 2;
  if (opts.morsel_rows == kDefaultMorselRows) opts.morsel_rows = 16;
  auto engine = std::make_unique<QueryEngine>(opts);
  testutil::RegisterAll(engine.get());
  return engine;
}

void ExpectIdentical(const QueryResult& a, const QueryResult& b, const std::string& ctx) {
  ASSERT_EQ(a.columns, b.columns) << ctx;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << ctx;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << ctx << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_TRUE(a.rows[r][c].Equals(b.rows[r][c]))
          << ctx << " row " << r << " col " << c << ": " << a.rows[r][c].ToString()
          << " vs " << b.rows[r][c].ToString();
    }
  }
}

/// Blocks every driver at the first morsel index >= 2 until released —
/// the deterministic way to hold a query mid-execution so a cancel or an
/// admission probe lands at a known point. Release() is one-way: after it,
/// the hook is a no-op for the rest of the engine's life.
struct MorselGate {
  std::mutex mu;
  std::condition_variable cv;
  bool reached = false;
  bool released = false;

  void Hook(uint64_t m) {
    std::unique_lock<std::mutex> lk(mu);
    if (released || m < 2) return;
    reached = true;
    cv.notify_all();
    cv.wait(lk, [&] { return released; });
  }
  void AwaitReached() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return reached; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lk(mu);
      released = true;
    }
    cv.notify_all();
  }
};

TEST(ServeProtocol, FrameAndBodyRoundTrip) {
  QueryResult res;
  res.columns = {"count", "sum"};
  res.rows.push_back({Value::Int(42), Value::Float(13.25)});
  QueryTelemetry tel;
  tel.execute_ms = 1.5;
  tel.used_jit = true;
  tel.jit_cache_hit = true;
  tel.tasks_dealt = 7;
  tel.cancelled = false;
  tel.plan = "Reduce(...)";

  Frame f;
  f.type = FrameType::kResult;
  f.query_id = 99;
  f.body = serve::EncodeResultBody(res, tel);
  const std::string bytes = serve::EncodeFrame(f);
  // Strip the u32 length prefix the socket layer consumes.
  auto back = serve::DecodeFramePayload(std::string_view(bytes).substr(4));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->type, FrameType::kResult);
  EXPECT_EQ(back->query_id, 99u);
  auto body = serve::DecodeResultBody(back->body);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  ExpectIdentical(res, body->result, "result round-trip");
  EXPECT_EQ(body->telemetry.tasks_dealt, 7u);
  EXPECT_TRUE(body->telemetry.jit_cache_hit);
  EXPECT_EQ(body->telemetry.plan, tel.plan);
}

TEST(ServeProtocol, DecodersRejectTruncationAndTrailingGarbage) {
  QueryResult res;
  res.columns = {"c"};
  res.rows.push_back({Value::Int(1)});
  const std::string result_body = serve::EncodeResultBody(res, QueryTelemetry{});
  const std::string query_body = serve::EncodeQueryBody("SELECT 1");
  const std::string cancelled_body = serve::EncodeCancelledBody(QueryTelemetry{});
  const std::string error_body = serve::EncodeErrorBody(Status::Internal("boom"));
  const std::string rejected_body = serve::EncodeRejectedBody("full");

  // Trailing garbage after a well-formed body: every decoder must reject it
  // (the !AtEnd() strictness rule shared with the shard codec).
  EXPECT_FALSE(serve::DecodeResultBody(result_body + "x").ok());
  EXPECT_FALSE(serve::DecodeQueryBody(query_body + "x").ok());
  EXPECT_FALSE(serve::DecodeCancelledBody(cancelled_body + "x").ok());
  Status out;
  EXPECT_FALSE(serve::DecodeErrorBody(error_body + "x", &out).ok());
  EXPECT_FALSE(serve::DecodeRejectedBody(rejected_body + "x").ok());

  // Every proper prefix is a truncation and must fail cleanly.
  for (size_t cut = 0; cut < result_body.size(); ++cut) {
    EXPECT_FALSE(serve::DecodeResultBody(std::string_view(result_body).substr(0, cut)).ok())
        << "cut at " << cut;
  }

  // Frame header checks: bad magic, bad version, unknown type.
  Frame f;
  f.type = FrameType::kQuery;
  f.query_id = 1;
  f.body = query_body;
  std::string payload = serve::EncodeFrame(f).substr(4);
  std::string bad = payload;
  bad[0] = 'X';
  EXPECT_FALSE(serve::DecodeFramePayload(bad).ok());
  bad = payload;
  bad[2] = 99;  // version
  EXPECT_FALSE(serve::DecodeFramePayload(bad).ok());
  bad = payload;
  bad[3] = 77;  // type
  EXPECT_FALSE(serve::DecodeFramePayload(bad).ok());
}

TEST(ServeServer, ConcurrentClientsMatchDirectExecution) {
  obs::MetricsRegistry metrics;
  EngineOptions opts;
  opts.metrics = &metrics;
  auto engine = MakeServeEngine(opts);
  QueryServer server(engine.get());
  ASSERT_TRUE(server.Start().ok());

  // Baselines from a fresh single-threaded engine, serially.
  auto baseline_engine = MakeServeEngine();
  std::vector<QueryResult> baselines;
  for (const auto& q : ServeWorkload()) {
    auto r = baseline_engine->Execute(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    baselines.push_back(std::move(*r));
  }

  constexpr int kClients = 8;
  constexpr int kRounds = 3;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = ServeClient::Connect(server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < ServeWorkload().size(); ++q) {
          const size_t idx = (q + c) % ServeWorkload().size();
          auto resp = client->Execute(ServeWorkload()[idx]);
          if (!resp.ok() || resp->type != FrameType::kResult) {
            ADD_FAILURE() << "client " << c << " query " << idx << ": "
                          << (resp.ok() ? "unexpected frame type"
                                        : resp.status().ToString());
            ++failures;
            return;
          }
          ExpectIdentical(baselines[idx], resp->result,
                          "client " + std::to_string(c) + " query " +
                              std::to_string(idx));
          // Telemetry is per query, not a racy engine-global: every one of
          // these morsel-parallelizable plans dealt at least one task.
          EXPECT_GT(resp->telemetry.tasks_dealt, 0u) << "query " << idx;
          EXPECT_FALSE(resp->telemetry.cancelled);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const uint64_t total = kClients * kRounds * ServeWorkload().size();
  EXPECT_EQ(metrics.GetCounter("proteus_queries_total")->value(), total);
  EXPECT_EQ(metrics.GetCounter("proteus_query_errors_total")->value(), 0u);
  EXPECT_EQ(metrics.GetGauge("proteus_queries_inflight")->value(), 0);

  server.Stop();
}

TEST(ServeServer, RepeatedQueryIsServedByTheSharedJitCache) {
  auto engine = MakeServeEngine();
  QueryServer server(engine.get());
  ASSERT_TRUE(server.Start().ok());

  auto client = ServeClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const std::string q = ServeWorkload()[0];

  auto first = client->Execute(q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->type, FrameType::kResult);
  EXPECT_TRUE(first->telemetry.used_jit);
  EXPECT_FALSE(first->telemetry.jit_cache_hit);

  // Second identical query — even from a different connection — hits the
  // engine's shared compiled-query cache.
  auto client2 = ServeClient::Connect(server.port());
  ASSERT_TRUE(client2.ok());
  auto second = client2->Execute(q);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->type, FrameType::kResult);
  EXPECT_TRUE(second->telemetry.jit_cache_hit);
  ExpectIdentical(first->result, second->result, "cache hit result");

  server.Stop();
}

TEST(ServeServer, CancelStopsAtMorselBoundaryAndServerStaysHealthy) {
  obs::MetricsRegistry metrics;
  auto gate = std::make_shared<MorselGate>();
  EngineOptions opts;
  opts.metrics = &metrics;
  opts.morsel_rows = 4;  // many morsels => many cancel checkpoints
  opts.morsel_boundary_hook = [gate](uint64_t m) { gate->Hook(m); };
  auto engine = MakeServeEngine(opts);
  QueryServer server(engine.get());
  ASSERT_TRUE(server.Start().ok());

  auto client = ServeClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto id = client->Submit(
      "SELECT count(*), sum(l_extendedprice) FROM lineitem_json WHERE l_orderkey < 1000000");
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Hold the query at a morsel boundary and land the cancel. Cancel() only
  // guarantees the frame was written, so barrier on a fast-failing probe
  // query: the session reader consumes frames in order, which means its
  // kError response proves the kCancel before it was processed.
  gate->AwaitReached();
  ASSERT_TRUE(client->Cancel(*id).ok());
  auto probe_id = client->Submit("SELECT count(*) FROM no_such_dataset");
  ASSERT_TRUE(probe_id.ok());
  auto probe = client->Await();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(probe->type, FrameType::kError);
  EXPECT_EQ(probe->query_id, *probe_id);
  gate->Release();

  auto resp = client->Await();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->type, FrameType::kCancelled);
  EXPECT_EQ(resp->query_id, *id);
  EXPECT_TRUE(resp->telemetry.cancelled);

  // Cancellation is not an error — it has its own counter. The only error
  // on record is the deliberate barrier probe above.
  EXPECT_EQ(metrics.GetCounter("proteus_queries_cancelled_total")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("proteus_query_errors_total")->value(), 1u);

  // The connection and the engine both keep serving.
  auto after = client->Execute(ServeWorkload()[1]);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->type, FrameType::kResult);
  EXPECT_EQ(metrics.GetGauge("proteus_queries_inflight")->value(), 0);

  server.Stop();
}

TEST(ServeServer, AdmissionOverflowAnswersRejectedNotHang) {
  auto gate = std::make_shared<MorselGate>();
  EngineOptions opts;
  opts.morsel_rows = 4;
  opts.morsel_boundary_hook = [gate](uint64_t m) { gate->Hook(m); };
  auto engine = MakeServeEngine(opts);
  ServerOptions sopts;
  sopts.admission.max_inflight = 1;
  sopts.admission.queue_depth = 0;  // no parking: overload rejects instantly
  QueryServer server(engine.get(), sopts);
  ASSERT_TRUE(server.Start().ok());

  auto blocker = ServeClient::Connect(server.port());
  ASSERT_TRUE(blocker.ok());
  auto id = blocker->Submit(ServeWorkload()[0]);
  ASSERT_TRUE(id.ok());
  gate->AwaitReached();  // the one slot is now held mid-query

  auto probe = ServeClient::Connect(server.port());
  ASSERT_TRUE(probe.ok());
  auto rejected = probe->Execute(ServeWorkload()[1]);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->type, FrameType::kRejected);
  EXPECT_FALSE(rejected->reject_reason.empty());
  EXPECT_EQ(server.admission().rejected(), 1u);

  gate->Release();
  auto done = blocker->Await();
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done->type, FrameType::kResult);

  // With the slot free the rejected client's retry succeeds.
  auto retry = probe->Execute(ServeWorkload()[1]);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->type, FrameType::kResult);

  server.Stop();
}

TEST(ServeServer, MalformedQueryBodyGetsErrorFrameAndSessionSurvives) {
  auto engine = MakeServeEngine();
  QueryServer server(engine.get());
  ASSERT_TRUE(server.Start().ok());

  auto client = ServeClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  // An engine-level failure (unknown dataset) comes back as kError with the
  // engine's status, not a dropped connection.
  auto bad = client->Execute("SELECT count(*) FROM no_such_dataset");
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_EQ(bad->type, FrameType::kError);
  EXPECT_FALSE(bad->error.ok());

  // The same connection still serves real queries afterwards.
  auto good = client->Execute(ServeWorkload()[0]);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->type, FrameType::kResult);

  server.Stop();
}

TEST(ServeAdmission, GateCountsAndCloseWakesWaiters) {
  AdmissionGate gate({.max_inflight = 1, .queue_depth = 1});
  ASSERT_EQ(gate.Enter(), AdmissionGate::Outcome::kAdmitted);

  // One caller parks in the queue; a second overflows and rejects at once.
  std::atomic<bool> waiter_done{false};
  std::thread waiter([&] {
    EXPECT_EQ(gate.Enter(), AdmissionGate::Outcome::kAdmitted);
    gate.Exit();
    waiter_done = true;
  });
  // Wait until the waiter actually parked, so the next Enter overflows.
  while (gate.waiting() < 1) std::this_thread::yield();
  EXPECT_EQ(gate.Enter(), AdmissionGate::Outcome::kRejected);
  EXPECT_EQ(gate.rejected(), 1u);

  gate.Exit();  // hands the slot to the parked waiter
  waiter.join();
  EXPECT_TRUE(waiter_done.load());

  gate.Close();
  EXPECT_EQ(gate.Enter(), AdmissionGate::Outcome::kClosed);
}

}  // namespace
}  // namespace proteus
