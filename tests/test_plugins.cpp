// Tests for the input plug-ins and their structural indexes (Table 2 API).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/datagen/spam.h"
#include "src/datagen/tpch.h"
#include "src/plugins/binary_plugins.h"
#include "src/plugins/csv_plugin.h"
#include "src/plugins/json_plugin.h"
#include "src/storage/bincol_format.h"
#include "src/storage/binrow_format.h"
#include "src/storage/text_writers.h"

namespace proteus {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

RowTable FlatTable() {
  RowTable t(Type::Record({{"k", Type::Int64()},
                           {"v", Type::Float64()},
                           {"name", Type::String()}}));
  t.Append({Value::Int(10), Value::Float(0.5), Value::Str("ten")});
  t.Append({Value::Int(20), Value::Float(1.5), Value::Str("twenty")});
  t.Append({Value::Int(30), Value::Float(2.5), Value::Str("thirty")});
  return t;
}

DatasetInfo FlatInfo(DataFormat fmt, const std::string& path) {
  DatasetInfo info;
  info.name = "flat_" + std::string(DataFormatName(fmt));
  info.format = fmt;
  info.path = path;
  info.type = Type::Collection(CollectionKind::kBag, FlatTable().record_type());
  return info;
}

// ---------------------------------------------------------------------------
// Binary plug-ins
// ---------------------------------------------------------------------------

TEST(BinColPlugin, ReadsValuesByOid) {
  std::string dir = testing::TempDir() + "/p_bincol";
  ASSERT_TRUE(WriteBinaryColumnDir(dir, FlatTable()).ok());
  BinColPlugin p(FlatInfo(DataFormat::kBinaryColumn, dir));
  ASSERT_TRUE(p.Open().ok());
  EXPECT_EQ(p.NumRecords(), 3u);
  EXPECT_EQ(p.ReadValue(1, {"k"})->i(), 20);
  EXPECT_DOUBLE_EQ(p.ReadValue(2, {"v"})->f(), 2.5);
  EXPECT_EQ(p.ReadValue(0, {"name"})->s(), "ten");
  EXPECT_FALSE(p.ReadValue(0, {"missing"}).ok());
  EXPECT_FALSE(p.ReadValue(0, {"a", "b"}).ok());  // flat format
}

TEST(BinColPlugin, StatsMinMax) {
  std::string dir = testing::TempDir() + "/p_bincol_stats";
  ASSERT_TRUE(WriteBinaryColumnDir(dir, FlatTable()).ok());
  BinColPlugin p(FlatInfo(DataFormat::kBinaryColumn, dir));
  StatsStore store;
  ASSERT_TRUE(p.CollectStats(&store).ok());
  const auto ds = store.Find(p.info().name);
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->cardinality, 3u);
  EXPECT_DOUBLE_EQ(ds->columns.at("k").min, 10.0);
  EXPECT_DOUBLE_EQ(ds->columns.at("k").max, 30.0);
  EXPECT_DOUBLE_EQ(ds->columns.at("v").max, 2.5);
}

TEST(BinRowPlugin, ReadsValuesByOid) {
  std::string path = testing::TempDir() + "/p.binrow";
  ASSERT_TRUE(WriteBinaryRowFile(path, FlatTable()).ok());
  BinRowPlugin p(FlatInfo(DataFormat::kBinaryRow, path));
  ASSERT_TRUE(p.Open().ok());
  EXPECT_EQ(p.NumRecords(), 3u);
  EXPECT_EQ(p.ReadValue(2, {"k"})->i(), 30);
  EXPECT_EQ(p.ReadValue(1, {"name"})->s(), "twenty");
  std::remove(path.c_str());
}

TEST(InputPlugin, ReadRecordProjectsRequestedFields) {
  std::string dir = testing::TempDir() + "/p_bincol_rec";
  ASSERT_TRUE(WriteBinaryColumnDir(dir, FlatTable()).ok());
  BinColPlugin p(FlatInfo(DataFormat::kBinaryColumn, dir));
  ASSERT_TRUE(p.Open().ok());
  auto rec = p.ReadRecord(1, {{"name"}, {"k"}});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->record().names.size(), 2u);
  EXPECT_EQ(rec->GetField("name")->s(), "twenty");
  EXPECT_EQ(rec->GetField("k")->i(), 20);
  EXPECT_FALSE(rec->GetField("v").ok());  // not requested
}

// ---------------------------------------------------------------------------
// CSV plug-in
// ---------------------------------------------------------------------------

class CsvPluginTest : public ::testing::Test {
 protected:
  std::string WriteVarWidthCsv() {
    std::string path = testing::TempDir() + "/var.csv";
    std::ofstream f(path);
    f << "1,0.5,ten\n22,1.25,twenty two\n333,2.5,three thirty three\n";
    return path;
  }
};

TEST_F(CsvPluginTest, VariableWidthUsesSamples) {
  auto info = FlatInfo(DataFormat::kCSV, WriteVarWidthCsv());
  CsvPlugin p(info);
  ASSERT_TRUE(p.Open().ok());
  EXPECT_FALSE(p.fixed_width());
  EXPECT_EQ(p.NumRecords(), 3u);
  EXPECT_EQ(p.ReadValue(0, {"k"})->i(), 1);
  EXPECT_EQ(p.ReadValue(2, {"k"})->i(), 333);
  EXPECT_DOUBLE_EQ(p.ReadValue(1, {"v"})->f(), 1.25);
  EXPECT_EQ(p.ReadValue(2, {"name"})->s(), "three thirty three");
  EXPECT_GT(p.StructuralIndexBytes(), 0u);
}

TEST_F(CsvPluginTest, FixedWidthDropsIndex) {
  std::string path = testing::TempDir() + "/fixed.csv";
  {
    std::ofstream f(path);
    f << "11,1.5,aa\n22,2.5,bb\n33,3.5,cc\n";
  }
  auto info = FlatInfo(DataFormat::kCSV, path);
  CsvPlugin p(info);
  ASSERT_TRUE(p.Open().ok());
  EXPECT_TRUE(p.fixed_width());
  EXPECT_EQ(p.ReadValue(1, {"k"})->i(), 22);
  EXPECT_EQ(p.ReadValue(2, {"name"})->s(), "cc");
  std::remove(path.c_str());
}

TEST_F(CsvPluginTest, HeaderSkipped) {
  std::string path = testing::TempDir() + "/hdr.csv";
  {
    std::ofstream f(path);
    f << "k,v,name\n1,0.5,x\n2,1.5,y\n";
  }
  auto info = FlatInfo(DataFormat::kCSV, path);
  info.csv.has_header = true;
  CsvPlugin p(info);
  ASSERT_TRUE(p.Open().ok());
  EXPECT_EQ(p.NumRecords(), 2u);
  EXPECT_EQ(p.ReadValue(0, {"k"})->i(), 1);
  std::remove(path.c_str());
}

TEST_F(CsvPluginTest, ArityMismatchFails) {
  std::string path = testing::TempDir() + "/bad.csv";
  {
    std::ofstream f(path);
    f << "1,0.5\n";  // schema expects 3 fields
  }
  CsvPlugin p(FlatInfo(DataFormat::kCSV, path));
  EXPECT_FALSE(p.Open().ok());
  std::remove(path.c_str());
}

TEST_F(CsvPluginTest, StrideOneIndexesEveryField) {
  auto info = FlatInfo(DataFormat::kCSV, WriteVarWidthCsv());
  info.csv.index_stride = 1;
  CsvPlugin p(info);
  ASSERT_TRUE(p.Open().ok());
  EXPECT_EQ(p.ReadValue(1, {"name"})->s(), "twenty two");
}

TEST_F(CsvPluginTest, EmptyCellIsNull) {
  std::string path = testing::TempDir() + "/nulls.csv";
  {
    std::ofstream f(path);
    f << "1,,x\n2,1.5,\n";
  }
  CsvPlugin p(FlatInfo(DataFormat::kCSV, path));
  ASSERT_TRUE(p.Open().ok());
  EXPECT_TRUE(p.ReadValue(0, {"v"})->is_null());
  EXPECT_TRUE(p.ReadValue(1, {"name"})->is_null());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// JSON plug-in
// ---------------------------------------------------------------------------

TEST(ParseJson, Primitives) {
  auto check = [](const std::string& text, const Value& expected) {
    auto v = ParseJsonValue(text.data(), text.data() + text.size());
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_TRUE(v->Equals(expected)) << text << " -> " << v->ToString();
  };
  check("42", Value::Int(42));
  check("-3.5", Value::Float(-3.5));
  check("1e3", Value::Float(1000.0));
  check("true", Value::Boolean(true));
  check("null", Value::Null());
  check("\"hi\\nthere\"", Value::Str("hi\nthere"));
  check("[1,2,3]", Value::MakeList({Value::Int(1), Value::Int(2), Value::Int(3)}));
  check("{\"a\":1}", Value::MakeRecord({"a"}, {Value::Int(1)}));
}

TEST(ParseJson, RejectsMalformed) {
  auto bad = [](const std::string& text) {
    auto v = ParseJsonValue(text.data(), text.data() + text.size());
    EXPECT_FALSE(v.ok()) << text;
  };
  bad("{\"a\":}");
  bad("[1,2");
  bad("\"unterminated");
}

DatasetInfo SpamJsonInfo(const std::string& path) {
  DatasetInfo info;
  info.name = "spam_json";
  info.format = DataFormat::kJSON;
  info.path = path;
  info.type = datagen::SpamJSONSchema();
  return info;
}

class JsonPluginTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = datagen::GenSpamJSON(50, 99);
    path_ = testing::TempDir() + "/spam.json";
  }

  void WriteData(bool shuffle) {
    JSONWriteOptions opts;
    opts.shuffle_field_order = shuffle;
    ASSERT_TRUE(WriteJSONFile(path_, table_, opts).ok());
  }

  RowTable table_;
  std::string path_;
};

TEST_F(JsonPluginTest, FixedSchemaModeDetected) {
  WriteData(/*shuffle=*/false);
  JsonPlugin p(SpamJsonInfo(path_));
  ASSERT_TRUE(p.Open().ok());
  EXPECT_TRUE(p.fixed_schema());
  EXPECT_EQ(p.NumRecords(), 50u);
}

TEST_F(JsonPluginTest, ShuffledFieldOrderFallsBackToLevel0) {
  WriteData(/*shuffle=*/true);
  JsonPlugin p(SpamJsonInfo(path_));
  ASSERT_TRUE(p.Open().ok());
  EXPECT_FALSE(p.fixed_schema());
  // Values must still resolve correctly despite arbitrary field order.
  for (uint64_t oid = 0; oid < 50; ++oid) {
    EXPECT_EQ(p.ReadValue(oid, {"mail_id"})->i(), table_.row(oid)[0].i());
  }
}

TEST_F(JsonPluginTest, ReadsTopLevelAndNestedFields) {
  WriteData(false);
  JsonPlugin p(SpamJsonInfo(path_));
  ASSERT_TRUE(p.Open().ok());
  for (uint64_t oid = 0; oid < 50; ++oid) {
    EXPECT_EQ(p.ReadValue(oid, {"lang"})->s(), table_.row(oid)[1].s());
    EXPECT_EQ(p.ReadValue(oid, {"body_len"})->i(), table_.row(oid)[4].i());
    // Nested record path (Level 0 registers origin.country directly).
    EXPECT_EQ(p.ReadValue(oid, {"origin", "country"})->s(),
              table_.row(oid)[6].GetField("country")->s());
  }
}

TEST_F(JsonPluginTest, UnnestIteratesArrayElements) {
  WriteData(false);
  JsonPlugin p(SpamJsonInfo(path_));
  ASSERT_TRUE(p.Open().ok());
  for (uint64_t oid = 0; oid < 50; ++oid) {
    auto cur = p.UnnestInit(oid, {"classes"});
    ASSERT_TRUE(cur.ok());
    const ValueList& expected = table_.row(oid)[7].list();
    size_t n = 0;
    while ((*cur)->HasNext()) {
      auto v = (*cur)->GetNext();
      ASSERT_TRUE(v.ok());
      EXPECT_TRUE(v->Equals(expected[n])) << v->ToString();
      ++n;
    }
    EXPECT_EQ(n, expected.size());
  }
}

TEST_F(JsonPluginTest, UnnestOnNonArrayFails) {
  WriteData(false);
  JsonPlugin p(SpamJsonInfo(path_));
  ASSERT_TRUE(p.Open().ok());
  EXPECT_FALSE(p.UnnestInit(0, {"lang"}).ok());
}

TEST_F(JsonPluginTest, MissingFieldIsNotFound) {
  WriteData(false);
  JsonPlugin p(SpamJsonInfo(path_));
  ASSERT_TRUE(p.Open().ok());
  auto v = p.ReadValue(0, {"no_such_field"});
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST_F(JsonPluginTest, IndexSmallerThanFile) {
  WriteData(false);
  JsonPlugin p(SpamJsonInfo(path_));
  ASSERT_TRUE(p.Open().ok());
  EXPECT_GT(p.StructuralIndexBytes(), 0u);
  // The paper reports index sizes of ~15-25% of the JSON file.
  EXPECT_LT(p.StructuralIndexBytes(), p.file().size());
}

TEST_F(JsonPluginTest, ReadRecordReconstructsNestedShape) {
  WriteData(false);
  JsonPlugin p(SpamJsonInfo(path_));
  ASSERT_TRUE(p.Open().ok());
  auto rec = p.ReadRecord(3, {{"mail_id"}, {"origin", "country"}});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->GetField("mail_id")->i(), table_.row(3)[0].i());
  auto origin = rec->GetField("origin");
  ASSERT_TRUE(origin.ok());
  EXPECT_EQ(origin->GetField("country")->s(), table_.row(3)[6].GetField("country")->s());
}

TEST(JsonPluginEdge, MalformedObjectFailsValidation) {
  std::string path = testing::TempDir() + "/badobj.json";
  {
    std::ofstream f(path);
    f << "{\"a\": 1}\n{\"a\": }\n";
  }
  DatasetInfo info;
  info.name = "bad";
  info.format = DataFormat::kJSON;
  info.path = path;
  info.type = Type::BagOfRecords({{"a", Type::Int64()}});
  JsonPlugin p(info);
  EXPECT_FALSE(p.Open().ok());
  std::remove(path.c_str());
}

TEST(JsonPluginEdge, OptionalFieldsVaryAcrossObjects) {
  // The paper stresses JSON schema flexibility: optional fields.
  std::string path = testing::TempDir() + "/optional.json";
  {
    std::ofstream f(path);
    f << "{\"a\": 1, \"b\": 2}\n{\"a\": 3}\n{\"b\": 4, \"a\": 5}\n";
  }
  DatasetInfo info;
  info.name = "optional";
  info.format = DataFormat::kJSON;
  info.path = path;
  info.type = Type::BagOfRecords({{"a", Type::Int64()}, {"b", Type::Int64()}});
  JsonPlugin p(info);
  ASSERT_TRUE(p.Open().ok());
  EXPECT_FALSE(p.fixed_schema());
  EXPECT_EQ(p.ReadValue(0, {"b"})->i(), 2);
  EXPECT_FALSE(p.ReadValue(1, {"b"}).ok());  // absent
  EXPECT_EQ(p.ReadValue(2, {"a"})->i(), 5);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Plug-in registry + Table 2 defaults
// ---------------------------------------------------------------------------

TEST(PluginRegistry, OpensOnceAndCollectsStats) {
  std::string dir = testing::TempDir() + "/reg_bincol";
  ASSERT_TRUE(WriteBinaryColumnDir(dir, FlatTable()).ok());
  auto info = FlatInfo(DataFormat::kBinaryColumn, dir);
  PluginRegistry reg;
  StatsStore stats;
  auto p1 = reg.GetOrOpen(info, &stats);
  ASSERT_TRUE(p1.ok());
  auto p2 = reg.GetOrOpen(info, &stats);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p1, *p2);  // same instance, index kept alive
  EXPECT_NE(stats.Find(info.name), nullptr);
  EXPECT_EQ(stats.Find(info.name)->cardinality, 3u);
}

TEST(PluginDefaults, HashAndFlush) {
  std::string dir = testing::TempDir() + "/hf_bincol";
  ASSERT_TRUE(WriteBinaryColumnDir(dir, FlatTable()).ok());
  BinColPlugin p(FlatInfo(DataFormat::kBinaryColumn, dir));
  ASSERT_TRUE(p.Open().ok());
  auto h = p.HashValue(0, {"k"});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*h, Value::Int(10).Hash());
  std::string out;
  ASSERT_TRUE(p.FlushValue(0, {"name"}, &out).ok());
  EXPECT_EQ(out, "\"ten\"");
}

TEST(PathHelpers, DottedRoundTrip) {
  FieldPath p{"origin", "country"};
  EXPECT_EQ(DottedPath(p), "origin.country");
  EXPECT_EQ(SplitPath("origin.country"), p);
  EXPECT_EQ(SplitPath("plain"), FieldPath{"plain"});
}

}  // namespace
}  // namespace proteus
