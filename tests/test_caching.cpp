// Tests for the adaptive caching subsystem (paper §6): block building,
// plan-signature matching, plan rewriting, hybrid string reads, eviction
// policy (format-biased LRU), and invalidation on dataset updates.
#include <gtest/gtest.h>

#include "src/engine/radix_table.h"
#include "tests/engine_test_util.h"

namespace proteus {
namespace {

using testutil::Corpus;

class CachingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions opts;
    opts.cache_policy.enabled = true;
    engine_ = std::make_unique<QueryEngine>(opts);
    testutil::RegisterAll(engine_.get());
  }
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(CachingTest, FirstQueryBuildsCacheSecondUsesIt) {
  std::string q = "SELECT count(*) FROM lineitem_json WHERE l_orderkey < 30";
  auto r1 = engine_->Execute(q);
  ASSERT_TRUE(r1.ok());
  EXPECT_GT(engine_->caches().num_blocks(), 0u);
  double first_build = engine_->telemetry().cache_build_ms;
  EXPECT_GT(first_build, 0.0);

  auto r2 = engine_->Execute(q);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(engine_->telemetry().used_cache);
  EXPECT_TRUE(r1->EqualsUnordered(*r2));
}

TEST_F(CachingTest, CacheSharedAcrossDifferentQueriesOnSameFields) {
  ASSERT_TRUE(engine_->Execute("SELECT count(*) FROM lineitem_json WHERE l_orderkey < 30")
                  .ok());
  size_t blocks = engine_->caches().num_blocks();
  // Different predicate, same fields: full sub-tree scan match applies.
  auto r = engine_->Execute("SELECT count(*) FROM lineitem_json WHERE l_orderkey < 50");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(engine_->telemetry().used_cache);
  EXPECT_EQ(engine_->caches().num_blocks(), blocks);  // no new block
}

TEST_F(CachingTest, WiderFieldSetReplacesNarrowBlock) {
  ASSERT_TRUE(engine_->Execute("SELECT count(*) FROM lineitem_json WHERE l_orderkey < 30")
                  .ok());
  // Query needing an extra numeric field: the narrow block cannot serve it;
  // a wider block replaces it (Install() drops covered same-signature blocks).
  auto r = engine_->Execute(
      "SELECT max(l_quantity) FROM lineitem_json WHERE l_orderkey < 30");
  ASSERT_TRUE(r.ok());
  auto r2 = engine_->Execute(
      "SELECT max(l_quantity) FROM lineitem_json WHERE l_orderkey < 30");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(engine_->telemetry().used_cache);
  EXPECT_NEAR(r->scalar().AsFloat(), r2->scalar().AsFloat(), 1e-9);
}

TEST_F(CachingTest, StringPredicateUsesHybridOidReads) {
  // Strings are not cached (policy); the predicate still answers correctly
  // through raw reads addressed by the cached OID column.
  std::string q = "SELECT count(*) FROM lineitem_json WHERE l_shipmode = 'AIR'";
  auto r1 = engine_->Execute(q);
  ASSERT_TRUE(r1.ok());
  auto r2 = engine_->Execute(q);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(engine_->telemetry().used_cache);
  int64_t expected = 0;
  for (const auto& row : Corpus::Get().lineitem.rows()) {
    if (row[6].s() == "AIR") ++expected;
  }
  EXPECT_EQ(r1->scalar().i(), expected);
  EXPECT_EQ(r2->scalar().i(), expected);
}

TEST_F(CachingTest, InvalidationDropsCachesAndRecovers) {
  std::string q = "SELECT count(*) FROM lineitem_json WHERE l_orderkey < 30";
  ASSERT_TRUE(engine_->Execute(q).ok());
  ASSERT_GT(engine_->caches().num_blocks(), 0u);
  engine_->InvalidateDataset("lineitem_json");
  EXPECT_EQ(engine_->caches().num_blocks(), 0u);
  auto r = engine_->Execute(q);  // rebuilds index + cache
  ASSERT_TRUE(r.ok());
  EXPECT_GT(engine_->caches().num_blocks(), 0u);
}

TEST(CachingManager, FormatBiasedEviction) {
  CachePolicy policy;
  policy.enabled = true;
  policy.memory_budget_bytes = 1;  // force eviction on every install
  CachingManager mgr(policy);

  auto block = [](const std::string& sig, DataFormat fmt, size_t rows) {
    CacheBlock b;
    b.signature = sig;
    b.source_format = fmt;
    b.num_rows = rows;
    CacheColumn col;
    col.var = "x";
    col.path = {"f"};
    col.type = TypeKind::kInt64;
    col.ints.resize(rows);
    b.cols.push_back(std::move(col));
    return b;
  };
  // Install a JSON-sourced and a CSV-sourced block; over budget, the CSV
  // block (cheaper to rebuild) must be evicted first.
  mgr.Install(block("scan(a as x)", DataFormat::kJSON, 1000));
  mgr.Install(block("scan(b as x)", DataFormat::kCSV, 1000));
  ASSERT_EQ(mgr.num_blocks(), 1u);
  EXPECT_EQ(mgr.blocks()[0]->source_format, DataFormat::kJSON);
}

TEST(CachingManager, SignatureMatchIsExact) {
  CachingManager mgr({.enabled = true});
  CacheBlock b;
  b.signature = Operator::Scan("ds", "x")->Signature();
  b.num_rows = 0;
  mgr.Install(std::move(b));
  EXPECT_NE(mgr.FindMatch(*Operator::Scan("ds", "x")), nullptr);
  EXPECT_EQ(mgr.FindMatch(*Operator::Scan("ds", "y")), nullptr);   // other binding
  EXPECT_EQ(mgr.FindMatch(*Operator::Scan("ds2", "x")), nullptr);  // other dataset
}

TEST(RadixTable, InsertBuildProbe) {
  RadixTable t(4);
  for (uint32_t i = 0; i < 1000; ++i) t.Insert(HashMix64(i % 100), i);
  t.Build();
  // Every key 0..99 has exactly 10 rows.
  for (uint64_t k = 0; k < 100; ++k) {
    int hits = 0;
    t.Probe(HashMix64(k), [&](uint32_t row) {
      EXPECT_EQ(row % 100, k);
      ++hits;
    });
    EXPECT_EQ(hits, 10) << k;
  }
  // Missing keys probe empty.
  int miss = 0;
  t.Probe(HashMix64(100000), [&](uint32_t) { ++miss; });
  EXPECT_EQ(miss, 0);
}

TEST(RadixTable, EmptyTableProbeSafe) {
  RadixTable t;
  t.Build();
  int hits = 0;
  t.Probe(42, [&](uint32_t) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(RadixTable, SingleEntry) {
  RadixTable t;
  t.Insert(HashMix64(7), 3);
  t.Build();
  int hits = 0;
  t.Probe(HashMix64(7), [&](uint32_t row) {
    EXPECT_EQ(row, 3u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace proteus
