// Compiled-query cache: hit/miss/evict unit behavior, single-flight under
// concurrency, engine-level telemetry (repeat executions of one plan must
// hit; structurally different plans must miss), epoch invalidation after
// catalog / caching-manager mutation, shard sharing (N shards -> exactly one
// compile), and cell-identity of cached vs freshly compiled executions
// across num_threads and num_shards in {1, 2, 4}.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/jit/query_cache.h"
#include "tests/engine_test_util.h"

namespace proteus {
namespace {

// Small morsels so the ~240-row corpus splits into enough ranges for every
// shard count in {1, 2, 4} to actually fan out.
constexpr uint64_t kMorselRows = 16;

jit::QueryCacheKey Key(const std::string& sig, jit::CodegenMode mode = jit::CodegenMode::kMorsel,
                       uint64_t catalog_epoch = 0, uint64_t cache_epoch = 0) {
  return jit::QueryCacheKey{sig, mode, /*join_strategies=*/"", catalog_epoch, cache_epoch};
}

jit::CompiledQueryCache::CompileFn DummyCompile(std::atomic<int>* count) {
  return [count]() -> Result<std::shared_ptr<const jit::CompiledModule>> {
    count->fetch_add(1);
    return std::make_shared<const jit::CompiledModule>();
  };
}

// ---------------------------------------------------------------------------
// Unit tests against the cache itself
// ---------------------------------------------------------------------------

TEST(CompiledQueryCacheUnit, HitMissAndLruEviction) {
  jit::CompiledQueryCache cache(/*capacity=*/2);
  std::atomic<int> compiles{0};
  bool hit = true;

  auto a = cache.GetOrCompile(Key("a"), DummyCompile(&compiles), &hit);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(hit);
  auto b = cache.GetOrCompile(Key("b"), DummyCompile(&compiles), &hit);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(compiles.load(), 2);

  // Hit returns the same module without compiling.
  auto a2 = cache.GetOrCompile(Key("a"), DummyCompile(&compiles), &hit);
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(a2->get(), a->get());
  EXPECT_EQ(compiles.load(), 2);

  // Capacity 2: inserting "c" evicts the least recently used entry — "b",
  // because the hit above refreshed "a".
  ASSERT_TRUE(cache.GetOrCompile(Key("c"), DummyCompile(&compiles), &hit).ok());
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.GetOrCompile(Key("a"), DummyCompile(&compiles), &hit).ok());
  EXPECT_TRUE(hit) << "recently used entry must survive the eviction";
  ASSERT_TRUE(cache.GetOrCompile(Key("b"), DummyCompile(&compiles), &hit).ok());
  EXPECT_FALSE(hit) << "LRU entry must have been evicted";

  auto stats = cache.stats();
  EXPECT_EQ(stats.compiles, 4u);  // a, b, c, b-again
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_GE(stats.evictions, 1u);
}

TEST(CompiledQueryCacheUnit, ModeAndEpochsPartitionTheKeySpace) {
  jit::CompiledQueryCache cache(8);
  std::atomic<int> compiles{0};
  bool hit = false;
  // Same signature, four distinct keys: mode, catalog epoch, cache epoch.
  ASSERT_TRUE(cache.GetOrCompile(Key("s"), DummyCompile(&compiles), &hit).ok());
  ASSERT_TRUE(cache
                  .GetOrCompile(Key("s", jit::CodegenMode::kWholeRelation),
                                DummyCompile(&compiles), &hit)
                  .ok());
  ASSERT_TRUE(
      cache.GetOrCompile(Key("s", jit::CodegenMode::kMorsel, 1), DummyCompile(&compiles), &hit)
          .ok());
  ASSERT_TRUE(cache
                  .GetOrCompile(Key("s", jit::CodegenMode::kMorsel, 0, 1),
                                DummyCompile(&compiles), &hit)
                  .ok());
  EXPECT_EQ(compiles.load(), 4);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(CompiledQueryCacheUnit, FailedCompilesAreNotCached) {
  jit::CompiledQueryCache cache(4);
  std::atomic<int> attempts{0};
  bool hit = true;
  auto fail = [&]() -> Result<std::shared_ptr<const jit::CompiledModule>> {
    attempts.fetch_add(1);
    return Status::Unimplemented("outside the generated fast path");
  };
  auto r1 = cache.GetOrCompile(Key("f"), fail, &hit);
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kUnimplemented);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 0u);
  // The failure was not pinned: a later lookup retries (and can succeed).
  auto r2 = cache.GetOrCompile(Key("f"), fail, &hit);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(attempts.load(), 2);
  std::atomic<int> compiles{0};
  ASSERT_TRUE(cache.GetOrCompile(Key("f"), DummyCompile(&compiles), &hit).ok());
  EXPECT_EQ(compiles.load(), 1);
  EXPECT_EQ(cache.stats().compiles, 1u);
}

// Fixed-seed concurrent-lookup single-flight: many threads ask for one key
// at once; exactly one compiles (the compile fn sleeps so the others really
// do arrive mid-flight), everyone shares the same module. TSan-clean.
TEST(CompiledQueryCacheUnit, SingleFlightConcurrentLookups) {
  constexpr int kThreads = 8;
  jit::CompiledQueryCache cache(4);
  std::atomic<int> compiles{0};
  std::atomic<int> hits{0};
  std::atomic<int> failures{0};
  std::vector<std::shared_ptr<const jit::CompiledModule>> modules(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        bool hit = false;
        auto r = cache.GetOrCompile(
            Key("concurrent"),
            [&]() -> Result<std::shared_ptr<const jit::CompiledModule>> {
              compiles.fetch_add(1);
              std::this_thread::sleep_for(std::chrono::milliseconds(25));
              return std::make_shared<const jit::CompiledModule>();
            },
            &hit);
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        modules[i] = *r;
        if (hit) hits.fetch_add(1);
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(compiles.load(), 1) << "concurrent misses must single-flight";
  EXPECT_EQ(hits.load(), kThreads - 1);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(modules[i].get(), modules[0].get()) << "thread " << i;
  }
  auto stats = cache.stats();
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
}

// ---------------------------------------------------------------------------
// Engine-level behavior
// ---------------------------------------------------------------------------

QueryEngine MakeEngine(int threads = 1, int shards = 0, size_t cache_capacity = 32,
                       bool enable_caching = false) {
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.num_threads = threads;
  opts.num_shards = shards;
  opts.morsel_rows = kMorselRows;
  opts.jit_cache_capacity = cache_capacity;
  opts.cache_policy.enabled = enable_caching;
  // Keep the optimizer's input stable across executions: cold-access stats
  // collected by the first run can legally change the second run's join
  // order — a *different* plan signature, which would be a correct miss but
  // make hit/miss assertions about "the same plan" meaningless.
  opts.collect_stats_on_cold_access = false;
  return QueryEngine(std::move(opts));
}

QueryResult MustRun(QueryEngine* e, const std::string& q) {
  auto r = e->Execute(q);
  EXPECT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
  return r.ok() ? std::move(*r) : QueryResult{};
}

/// Cell-for-cell equality: same columns, same row order, exact values
/// (float bits included — Value::Equals compares doubles exactly).
void ExpectIdentical(const QueryResult& a, const QueryResult& b, const std::string& ctx) {
  ASSERT_EQ(a.columns, b.columns) << ctx;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << ctx;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << ctx << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_TRUE(a.rows[r][c].Equals(b.rows[r][c]))
          << ctx << " row " << r << " col " << c << ": " << a.rows[r][c].ToString()
          << " vs " << b.rows[r][c].ToString();
    }
  }
}

const char* kAggQuery =
    "SELECT count(*), sum(l_extendedprice), max(l_quantity) FROM lineitem_bincol "
    "WHERE l_orderkey < 30";
const char* kGroupQuery =
    "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_json "
    "GROUP BY l_linenumber";
const char* kJoinQuery =
    "SELECT count(*), max(o.o_totalprice) FROM orders_bincol o JOIN lineitem_bincol l "
    "ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 30";
const char* kUnnestQuery =
    "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l WHERE l.l_quantity > 10.0";

// Telemetry regression: re-executing one plan must report a cache hit with
// zero compile cost and an unchanged compile counter; a structurally
// different plan must miss.
TEST(QueryCacheEngine, RepeatExecutionHitsAndDifferentPlanMisses) {
  QueryEngine engine = MakeEngine();
  testutil::RegisterAll(&engine);
  ASSERT_NE(engine.jit_cache(), nullptr);

  QueryResult first = MustRun(&engine, kAggQuery);
  ASSERT_TRUE(engine.telemetry().used_jit);
  EXPECT_FALSE(engine.telemetry().jit_cache_hit);
  EXPECT_GT(engine.telemetry().jit_compile_ms, 0.0);
  const uint64_t compiles_after_first = engine.jit_cache()->stats().compiles;
  EXPECT_EQ(compiles_after_first, 1u);

  QueryResult second = MustRun(&engine, kAggQuery);
  ASSERT_TRUE(engine.telemetry().used_jit);
  EXPECT_TRUE(engine.telemetry().jit_cache_hit);
  EXPECT_EQ(engine.telemetry().jit_compile_ms, 0.0)
      << "a warm execution must perform zero IR generation/compilation";
  EXPECT_EQ(engine.telemetry().compile_ms, 0.0);
  EXPECT_EQ(engine.jit_cache()->stats().compiles, compiles_after_first)
      << "compile counter must not move on a warm run";
  ExpectIdentical(first, second, "cached vs fresh execution");
  EXPECT_FALSE(engine.last_ir().empty()) << "hits still expose the module's IR";

  // Different signature -> miss (and the old entry stays warm).
  MustRun(&engine, kGroupQuery);
  EXPECT_FALSE(engine.telemetry().jit_cache_hit);
  EXPECT_GT(engine.telemetry().jit_compile_ms, 0.0);
  EXPECT_EQ(engine.jit_cache()->stats().compiles, compiles_after_first + 1);
  MustRun(&engine, kAggQuery);
  EXPECT_TRUE(engine.telemetry().jit_cache_hit);
}

// Cached re-executions are cell-identical to a fresh compile, for every
// plan shape the generated fast path covers, across num_threads {1, 2, 4}.
TEST(QueryCacheEngine, CachedVsFreshCellIdenticalAcrossThreads) {
  for (const char* query : {kAggQuery, kGroupQuery, kJoinQuery, kUnnestQuery}) {
    // Reference: cache disabled — every execution compiles fresh.
    QueryEngine fresh = MakeEngine(/*threads=*/1, /*shards=*/0, /*cache_capacity=*/0);
    testutil::RegisterAll(&fresh);
    ASSERT_EQ(fresh.jit_cache(), nullptr);
    QueryResult reference = MustRun(&fresh, query);
    ASSERT_TRUE(fresh.telemetry().used_jit) << query;

    for (int threads : {1, 2, 4}) {
      QueryEngine engine = MakeEngine(threads);
      testutil::RegisterAll(&engine);
      QueryResult cold = MustRun(&engine, query);
      EXPECT_FALSE(engine.telemetry().jit_cache_hit);
      QueryResult warm = MustRun(&engine, query);
      EXPECT_TRUE(engine.telemetry().jit_cache_hit) << query;
      std::string ctx = std::string(query) + " threads=" + std::to_string(threads);
      ExpectIdentical(reference, cold, ctx + " cold");
      ExpectIdentical(reference, warm, ctx + " warm");
    }
  }
}

// The per-shard recompile is fixed: every ShardExecutor shares the engine's
// cache, so N shards of one plan trigger exactly one compile (cold) and
// zero (warm) — ShardExecStats deltas surface through the cache stats here.
TEST(QueryCacheEngine, ShardsShareOneCompile) {
  // JSON driver: its byte-balanced Split() honors the small morsel_rows, so
  // every shard count actually fans out (bincol morsels snap to 1024-row
  // blocks, which would collapse this corpus to a single shard).
  const char* query =
      "SELECT count(*), sum(l_extendedprice), max(l_quantity) FROM lineitem_json "
      "WHERE l_orderkey < 30";
  QueryEngine reference_engine = MakeEngine();
  testutil::RegisterAll(&reference_engine);
  QueryResult reference = MustRun(&reference_engine, query);

  for (int shards : {1, 2, 4}) {
    QueryEngine engine = MakeEngine(/*threads=*/1, shards);
    testutil::RegisterAll(&engine);
    QueryResult cold = MustRun(&engine, query);
    ASSERT_EQ(engine.telemetry().shards_used, shards);
    ASSERT_TRUE(engine.telemetry().used_jit);
    EXPECT_EQ(engine.jit_cache()->stats().compiles, 1u)
        << shards << " shards must trigger exactly one compile";
    EXPECT_FALSE(engine.telemetry().jit_cache_hit);

    QueryResult warm = MustRun(&engine, query);
    EXPECT_EQ(engine.jit_cache()->stats().compiles, 1u);
    EXPECT_TRUE(engine.telemetry().jit_cache_hit)
        << "warm sharded run must be served entirely from the cache";
    EXPECT_EQ(engine.telemetry().jit_compile_ms, 0.0);

    std::string ctx = "shards=" + std::to_string(shards);
    ExpectIdentical(reference, cold, ctx + " cold");
    ExpectIdentical(reference, warm, ctx + " warm");
  }
}

// Epoch invalidation: catalog mutations retire compiled modules.
TEST(QueryCacheEngine, CatalogMutationInvalidates) {
  QueryEngine engine = MakeEngine();
  testutil::RegisterAll(&engine);
  QueryResult before = MustRun(&engine, kAggQuery);
  MustRun(&engine, kAggQuery);
  ASSERT_TRUE(engine.telemetry().jit_cache_hit);
  ASSERT_EQ(engine.jit_cache()->stats().compiles, 1u);

  // Registering any dataset bumps the catalog epoch: the module was built
  // against schema-derived constants of the old catalog generation.
  DatasetInfo extra;
  extra.name = "spam_extra";
  extra.format = DataFormat::kJSON;
  extra.path = testutil::Corpus::Get().dir + "/spam.json";
  extra.type = datagen::SpamJSONSchema();
  ASSERT_TRUE(engine.RegisterDataset(extra).ok());

  QueryResult after = MustRun(&engine, kAggQuery);
  EXPECT_FALSE(engine.telemetry().jit_cache_hit) << "catalog mutation must invalidate";
  EXPECT_EQ(engine.jit_cache()->stats().compiles, 2u);
  ExpectIdentical(before, after, "recompiled after catalog mutation");

  // InvalidateDataset (drop-and-rebuild update story) also retires modules —
  // the plug-in is evicted, so data pointers and structural indexes change.
  MustRun(&engine, kAggQuery);
  ASSERT_TRUE(engine.telemetry().jit_cache_hit);
  engine.InvalidateDataset("lineitem_bincol");
  QueryResult reloaded = MustRun(&engine, kAggQuery);
  EXPECT_FALSE(engine.telemetry().jit_cache_hit) << "dataset invalidation must invalidate";
  ExpectIdentical(before, reloaded, "recompiled after dataset invalidation");
}

// Epoch invalidation: CachingManager mutations retire compiled modules, and
// plans rewritten onto cache scans hit on re-execution (their cache-block
// pointers are bound per run, not baked).
TEST(QueryCacheEngine, CachingManagerMutationInvalidates) {
  // Reference: the same caching pipeline with the compiled-query cache
  // disabled, so every run compiles fresh. (A non-caching engine is not a
  // valid bit-level reference here: CacheScan morsels split differently from
  // raw JSON scans, so partial sums fold in a different order.)
  QueryEngine fresh = MakeEngine(/*threads=*/1, /*shards=*/0, /*cache_capacity=*/0,
                                 /*enable_caching=*/true);
  testutil::RegisterAll(&fresh);
  QueryResult reference = MustRun(&fresh, kGroupQuery);
  ASSERT_TRUE(fresh.telemetry().used_cache);

  QueryEngine engine = MakeEngine(/*threads=*/1, /*shards=*/0, /*cache_capacity=*/32,
                                  /*enable_caching=*/true);
  testutil::RegisterAll(&engine);
  // First run: builds the scan cache (Install bumps the cache epoch), then
  // compiles the rewritten plan.
  QueryResult cold = MustRun(&engine, kGroupQuery);
  ASSERT_TRUE(engine.telemetry().used_cache);
  ASSERT_TRUE(engine.telemetry().used_jit);
  EXPECT_FALSE(engine.telemetry().jit_cache_hit);
  const uint64_t compiles_cold = engine.jit_cache()->stats().compiles;

  // Second run: same rewrite, no new installs -> warm.
  QueryResult warm = MustRun(&engine, kGroupQuery);
  EXPECT_TRUE(engine.telemetry().jit_cache_hit)
      << "cache-scan plans must be reusable across executions";
  EXPECT_EQ(engine.jit_cache()->stats().compiles, compiles_cold);
  ExpectIdentical(reference, cold, "caching engine cold");
  ExpectIdentical(reference, warm, "caching engine warm");

  // Mutating the caching manager retires the module; the rebuilt cache gets
  // a new block id, so the re-run compiles a fresh (re-rewritten) plan.
  engine.caches().InvalidateDataset("lineitem_json");
  QueryResult rebuilt = MustRun(&engine, kGroupQuery);
  EXPECT_FALSE(engine.telemetry().jit_cache_hit)
      << "caching-manager mutation must invalidate";
  EXPECT_GT(engine.jit_cache()->stats().compiles, compiles_cold);
  ExpectIdentical(reference, rebuilt, "caching engine rebuilt");
}

}  // namespace
}  // namespace proteus
