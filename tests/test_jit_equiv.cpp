// Differential harness: the generated engine must agree with the Volcano
// interpreter on every query the JIT accepts — across formats, query shapes,
// and selectivities (parameterized sweep), plus randomized predicates and a
// fixed-seed randomized-plan property sweep.
//
// Since the parallel-JIT-pipelines PR the agreement contract is *cell
// identity*, not multiset tolerance: generated pipelines are emitted with a
// (morsel_begin, morsel_end) range parameter and driven over the same
// Split() morsel decomposition the interpreter uses, per-morsel partials
// merging through the same fold. So for every covered plan shape, JIT
// results must be cell-for-cell identical — float bits and row order
// included — across num_threads ∈ {1, 2, 4}, to the interpreter, and
// composed with num_shards. The matrix below drives scans, selections,
// joins, outer joins, group-bys, and unnest through all four plug-ins.
#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <random>
#include <sstream>

#include "tests/engine_test_util.h"

namespace proteus {
namespace {

// Small morsels so the ~240-row corpus splits into many ranges and the
// merge order is actually exercised.
constexpr uint64_t kDiffMorselRows = 16;

struct EquivCase {
  std::string name;
  std::string query;
};

class JitEquivTest : public ::testing::TestWithParam<EquivCase> {};

QueryResult RunMode(const std::string& q, ExecMode mode, bool* used_jit) {
  EngineOptions opts;
  opts.mode = mode;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  auto r = engine.Execute(q);
  EXPECT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
  if (used_jit != nullptr) *used_jit = engine.telemetry().used_jit;
  return r.ok() ? *r : QueryResult{};
}

/// One engine run with full telemetry, at a given thread/shard fan-out.
struct RunInfo {
  QueryResult result;
  QueryTelemetry telemetry;
  Status status = Status::OK();
};

RunInfo RunConfig(const std::string& q, ExecMode mode, int threads, int shards = 0) {
  EngineOptions opts;
  opts.mode = mode;
  opts.num_threads = threads;
  opts.num_shards = shards;
  opts.morsel_rows = kDiffMorselRows;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  auto r = engine.Execute(q);
  RunInfo info;
  info.status = r.status();
  if (r.ok()) info.result = std::move(*r);
  info.telemetry = engine.telemetry();
  return info;
}

RunInfo RunPlanConfig(const std::function<OpPtr()>& make_plan, ExecMode mode, int threads) {
  EngineOptions opts;
  opts.mode = mode;
  opts.num_threads = threads;
  opts.morsel_rows = kDiffMorselRows;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  auto r = engine.ExecutePlan(make_plan());
  RunInfo info;
  info.status = r.status();
  if (r.ok()) info.result = std::move(*r);
  info.telemetry = engine.telemetry();
  return info;
}

/// Cell-for-cell equality: same columns, same row order, exact values
/// (float bits included — Value::Equals compares doubles exactly).
void ExpectIdentical(const QueryResult& a, const QueryResult& b, const std::string& ctx) {
  ASSERT_EQ(a.columns, b.columns) << ctx;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << ctx;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << ctx << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_TRUE(a.rows[r][c].Equals(b.rows[r][c]))
          << ctx << " row " << r << " col " << c << ": " << a.rows[r][c].ToString()
          << " vs " << b.rows[r][c].ToString();
    }
  }
}

TEST_P(JitEquivTest, JitMatchesInterpreter) {
  const EquivCase& c = GetParam();
  bool used_jit = false;
  QueryResult jit = RunMode(c.query, ExecMode::kJIT, &used_jit);
  QueryResult interp = RunMode(c.query, ExecMode::kInterp, nullptr);
  EXPECT_TRUE(used_jit) << "query unexpectedly fell back: " << c.query;
  EXPECT_TRUE(jit.EqualsUnordered(interp, 1e-6))
      << c.query << "\nJIT:\n"
      << jit.ToString() << "\nInterp:\n"
      << interp.ToString();
}

std::vector<EquivCase> SweepCases() {
  std::vector<EquivCase> cases;
  // Selectivity sweep (the paper's 10/20/50/100%) x format x template.
  for (int sel : {6, 12, 30, 60}) {  // of 60 orders
    for (const char* ds : {"lineitem_bincol", "lineitem_binrow", "lineitem_csv",
                           "lineitem_json", "lineitem_json_shuffled"}) {
      std::string s = std::to_string(sel);
      cases.push_back({std::string(ds) + "_count_" + s,
                       "SELECT count(*) FROM " + std::string(ds) + " WHERE l_orderkey < " + s});
      cases.push_back({std::string(ds) + "_agg4_" + s,
                       "SELECT count(*), max(l_quantity), sum(l_tax), min(l_discount) FROM " +
                           std::string(ds) + " WHERE l_orderkey < " + s});
      cases.push_back(
          {std::string(ds) + "_preds_" + s,
           "SELECT count(*) FROM " + std::string(ds) + " WHERE l_orderkey < " + s +
               " and l_quantity < 40.0 and l_discount < 0.08 and l_tax < 0.06"});
      cases.push_back({std::string(ds) + "_group_" + s,
                       "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM " +
                           std::string(ds) + " WHERE l_orderkey < " + s +
                           " GROUP BY l_linenumber"});
    }
    std::string s = std::to_string(sel);
    cases.push_back({"join_bincol_" + s,
                     "SELECT count(*), max(o.o_totalprice) FROM orders_bincol o JOIN "
                     "lineitem_bincol l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < " +
                         s});
    cases.push_back({"join_json_" + s,
                     "SELECT count(*), max(o.o_totalprice) FROM orders_json o JOIN "
                     "lineitem_json l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < " +
                         s});
    cases.push_back({"unnest_" + s,
                     "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l WHERE "
                     "l.l_orderkey < " +
                         s});
  }
  // Strings, projections, comprehension syntax.
  cases.push_back({"str_eq_csv",
                   "SELECT count(*) FROM lineitem_csv WHERE l_shipmode = 'RAIL'"});
  cases.push_back({"str_eq_json",
                   "SELECT count(*) FROM lineitem_json WHERE l_shipmode = 'SHIP'"});
  cases.push_back({"str_group",
                   "SELECT l_shipmode, count(*), max(l_quantity) FROM lineitem_bincol "
                   "GROUP BY l_shipmode"});
  cases.push_back({"projection_rows",
                   "SELECT o_orderkey, o_totalprice FROM orders_bincol WHERE o_orderkey < 17"});
  cases.push_back({"comp_record_yield",
                   "for { s <- spam, s.body_len > 3000 } "
                   "yield bag <id: s.mail_id, n: s.body_len>"});
  cases.push_back({"comp_nested_path",
                   "for { s <- spam, s.origin.country = 'RU' } yield count"});
  cases.push_back({"comp_unnest_elem",
                   "for { s <- spam, k <- s.classes, k.label > 10 } yield (count, max k.label)"});
  cases.push_back({"arith_expr",
                   "SELECT sum(l_extendedprice * (1.0 - l_discount) * (1.0 + l_tax)) "
                   "FROM lineitem_bincol WHERE l_orderkey < 30"});
  cases.push_back({"three_way_join",
                   "SELECT count(*) FROM lineitem_bincol l JOIN orders_bincol o ON "
                   "l.l_orderkey = o.o_orderkey JOIN orders_json oj ON "
                   "o.o_orderkey = oj.o_orderkey WHERE l.l_orderkey < 21"});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, JitEquivTest, ::testing::ValuesIn(SweepCases()),
                         [](const auto& info) { return info.param.name; });

// Randomized predicates: conjunctions of range predicates over numeric
// lineitem columns with random thresholds must agree in both engines.
TEST(JitEquivRandom, RandomRangePredicates) {
  std::mt19937_64 rng(2016);
  std::uniform_int_distribution<int> key(0, 60);
  std::uniform_real_distribution<double> qty(1, 50), disc(0, 0.1), tax(0, 0.08);
  const char* datasets[] = {"lineitem_bincol", "lineitem_csv", "lineitem_json"};
  for (int trial = 0; trial < 12; ++trial) {
    std::ostringstream q;
    q.precision(6);
    q << "SELECT count(*), sum(l_quantity) FROM " << datasets[trial % 3] << " WHERE ";
    q << "l_orderkey < " << key(rng);
    if (trial % 2 == 0) q << " and l_quantity < " << qty(rng);
    if (trial % 3 == 0) q << " and l_discount < " << disc(rng);
    if (trial % 4 == 0) q << " and l_tax >= " << tax(rng);
    bool used_jit = false;
    QueryResult a = RunMode(q.str(), ExecMode::kJIT, &used_jit);
    QueryResult b = RunMode(q.str(), ExecMode::kInterp, nullptr);
    EXPECT_TRUE(used_jit);
    EXPECT_TRUE(a.EqualsUnordered(b, 1e-6)) << q.str();
  }
}

// Caching must not change results: run the same query twice with caching on
// (second run reads from cache) and compare to the uncached interpreter.
TEST(JitEquivRandom, CachedRunsMatchUncached) {
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.cache_policy.enabled = true;
  QueryEngine cached(opts);
  testutil::RegisterAll(&cached);

  std::string q =
      "SELECT count(*), max(l_quantity) FROM lineitem_json WHERE l_orderkey < 30";
  auto first = cached.Execute(q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cached.Execute(q);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(cached.telemetry().used_cache);

  QueryResult oracle = RunMode(q, ExecMode::kInterp, nullptr);
  EXPECT_TRUE(first->EqualsUnordered(oracle, 1e-6));
  EXPECT_TRUE(second->EqualsUnordered(oracle, 1e-6));
}

// ---------------------------------------------------------------------------
// Differential matrix: parallel JIT ≡ serial JIT ≡ interpreter, cell for
// cell, across num_threads ∈ {1, 2, 4} × all four plug-ins × plan shapes.
// ---------------------------------------------------------------------------

struct DiffCase {
  std::string name;
  std::string query;
};

class JitDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(JitDifferentialTest, CellIdenticalAcrossThreadsAndEngines) {
  const DiffCase& c = GetParam();
  // Interpreter oracle at one thread — itself morsel-driven over the same
  // decomposition, which is exactly why cell identity is achievable.
  RunInfo oracle = RunConfig(c.query, ExecMode::kInterp, 1);
  ASSERT_TRUE(oracle.status.ok()) << c.query << "\n" << oracle.status.ToString();
  for (int threads : {1, 2, 4}) {
    RunInfo jit = RunConfig(c.query, ExecMode::kJIT, threads);
    ASSERT_TRUE(jit.status.ok()) << c.query << "\n" << jit.status.ToString();
    ExpectIdentical(oracle.result, jit.result,
                    c.query + " @ jit threads=" + std::to_string(threads));
    EXPECT_TRUE(jit.telemetry.used_jit)
        << c.query << " unexpectedly fell back: " << jit.telemetry.fallback_reason;
    EXPECT_TRUE(jit.telemetry.jit_parallel) << c.query;
    EXPECT_GT(jit.telemetry.morsels, 0u) << c.query;
    EXPECT_LE(jit.telemetry.threads_used, threads) << c.query;
  }
}

std::vector<DiffCase> DiffCases() {
  std::vector<DiffCase> cases;
  const char* lineitems[] = {"lineitem_bincol", "lineitem_binrow", "lineitem_csv",
                             "lineitem_json"};
  for (const char* ds : lineitems) {
    std::string d(ds);
    // Scans: bag projections make row order observable.
    cases.push_back({d + "_scan_rows",
                     "SELECT l_orderkey, l_quantity, l_extendedprice FROM " + d +
                         " WHERE l_orderkey < 1000000"});
    // Selections + the full scalar-aggregate set (count/sum/max/min).
    cases.push_back({d + "_select_aggs",
                     "SELECT count(*), sum(l_tax), max(l_quantity), min(l_discount) FROM " +
                         d + " WHERE l_orderkey < 30 and l_quantity < 40.0"});
    // Float-heavy arithmetic: per-morsel partial sums must fold identically.
    cases.push_back({d + "_float_sum",
                     "SELECT sum(l_extendedprice * (1.0 - l_discount) * (1.0 + l_tax)) FROM " +
                         d + " WHERE l_orderkey < 45"});
    // Group-bys: int keys and string keys, multiple monoids.
    cases.push_back({d + "_group_int",
                     "SELECT l_linenumber, count(*), sum(l_extendedprice), max(l_quantity) "
                     "FROM " + d + " WHERE l_orderkey < 40 GROUP BY l_linenumber"});
    cases.push_back({d + "_group_str",
                     "SELECT l_shipmode, count(*), min(l_extendedprice) FROM " + d +
                         " GROUP BY l_shipmode"});
    // Joins: shared radix build once, probes fan out per morsel.
    cases.push_back({d + "_join",
                     "SELECT count(*), max(o.o_totalprice) FROM orders_bincol o JOIN " + d +
                         " l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 40"});
  }
  // Join over raw-format build sides and three-way chains.
  cases.push_back({"join_json_build",
                   "SELECT count(*), max(o.o_totalprice) FROM orders_json o JOIN "
                   "lineitem_csv l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 35"});
  cases.push_back({"three_way_join",
                   "SELECT count(*) FROM lineitem_bincol l JOIN orders_bincol o ON "
                   "l.l_orderkey = o.o_orderkey JOIN orders_json oj ON "
                   "o.o_orderkey = oj.o_orderkey WHERE l.l_orderkey < 21"});
  // Join feeding a group-by (build once + per-morsel group partials).
  cases.push_back({"join_group",
                   "SELECT l.l_linenumber, count(*), sum(o.o_totalprice) FROM orders_json o "
                   "JOIN lineitem_json l ON o.o_orderkey = l.l_orderkey "
                   "GROUP BY l.l_linenumber"});
  // Unnest over nested JSON collections, alone and under aggregation.
  cases.push_back({"unnest_count",
                   "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l WHERE "
                   "l.l_orderkey < 30"});
  cases.push_back({"unnest_aggs",
                   "SELECT count(*), max(l.l_quantity) FROM orders_denorm o, "
                   "UNNEST(o.lineitems) l WHERE l.l_quantity > 10.0"});
  cases.push_back({"unnest_comp",
                   "for { s <- spam, k <- s.classes, k.label > 10 } yield (count, max k.label)"});
  // Set-monoid roots: per-morsel dedup sinks merged in morsel order keep
  // first-appearance row order identical to the interpreter — across all
  // four plug-ins, with duplicates guaranteed by the narrow key domains.
  for (const char* ds : {"lineitem_bincol", "lineitem_binrow", "lineitem_csv",
                         "lineitem_json"}) {
    std::string d(ds);
    cases.push_back({d + "_set_int",
                     "for { l <- " + d + " } yield set l.l_linenumber"});
    cases.push_back({d + "_set_record",
                     "for { l <- " + d + ", l.l_orderkey < 40 } "
                     "yield set <key: l.l_orderkey, n: l.l_linenumber>"});
  }
  cases.push_back({"set_str", "for { l <- lineitem_csv } yield set l.l_shipmode"});
  // Mixed-kind if-branches (int vs float) widen like the arithmetic path
  // instead of bailing — pinned against the interpreter in scalar, bag, and
  // extreme positions.
  cases.push_back({"if_mixed_sum",
                   "SELECT sum(if l_quantity > 25.0 then l_extendedprice else 0), count(*) "
                   "FROM lineitem_bincol WHERE l_orderkey < 40"});
  cases.push_back({"if_mixed_rows",
                   "SELECT l_orderkey, if l_quantity > 25.0 then l_extendedprice else 0 "
                   "FROM lineitem_json WHERE l_orderkey < 15"});
  cases.push_back({"if_mixed_minmax",
                   "SELECT min(if l_quantity > 25.0 then l_extendedprice else 1), "
                   "max(if l_discount < 0.05 then 0 else l_tax) FROM lineitem_csv"});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, JitDifferentialTest, ::testing::ValuesIn(DiffCases()),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Outer joins, outer unnest, and set outputs now run through generated code:
// per-morsel matched-build bitmaps + one-shot generated drain passes, a
// null-element emission branch, and set-dedup collection sinks. Every case
// pins used_jit = true / jit_parallel = true with an empty fallback_reason
// and results cell-identical (float bits + row order) to the interpreter
// across num_threads ∈ {1, 2, 4}, cold and warm cache.
// ---------------------------------------------------------------------------

/// Writes the outer-shape corpora once per process: orders whose keys have
/// no lineitems ("widows"), JSON rows with the join key absent (the
/// interpreter binds SQL null there), and denormalized orders with empty
/// lineitem arrays (outer-unnest rows).
const std::string& OuterCorpusDir() {
  static const std::string dir = [] {
    const testutil::Corpus& c = testutil::Corpus::Get();
    {
      std::ofstream f(c.dir + "/widow_orders.json");
      f << R"({"o_orderkey":1,"o_custkey":1,"o_totalprice":100.5,"o_shippriority":1,"o_comment":"real"})"
        << "\n";
      for (int i = 0; i < 7; ++i) {
        f << "{\"o_orderkey\":" << 1000 + i << ",\"o_custkey\":" << i % 3
          << ",\"o_totalprice\":" << 50.25 + i
          << ",\"o_shippriority\":0,\"o_comment\":\"widow\"}\n";
      }
      f << R"({"o_orderkey":2,"o_custkey":2,"o_totalprice":200.25,"o_shippriority":2,"o_comment":"real"})"
        << "\n";
    }
    {
      // Every third row lacks l_orderkey entirely: a SQL-null probe (or
      // build) key that must match nothing in either engine.
      std::ofstream f(c.dir + "/nullkey_lineitem.json");
      for (int i = 0; i < 36; ++i) {
        if (i % 3 == 0) {
          f << "{\"l_linenumber\":" << i % 7 << ",\"l_quantity\":" << 5.5 + i
            << ",\"l_extendedprice\":" << 100.25 + i
            << ",\"l_discount\":0.01,\"l_tax\":0.02,\"l_shipmode\":\"RAIL\","
               "\"l_comment\":\"nokey\"}\n";
        } else {
          f << "{\"l_orderkey\":" << i % 5 + 1 << ",\"l_linenumber\":" << i % 7
            << ",\"l_quantity\":" << 5.5 + i << ",\"l_extendedprice\":" << 100.25 + i
            << ",\"l_discount\":0.01,\"l_tax\":0.02,\"l_shipmode\":\"AIR\","
               "\"l_comment\":\"keyed\"}\n";
        }
      }
    }
    {
      // Orders 3, 6, 9, ... have empty lineitems arrays.
      std::ofstream f(c.dir + "/holey_denorm.json");
      for (int i = 1; i <= 21; ++i) {
        f << "{\"o_orderkey\":" << i << ",\"o_custkey\":" << i % 4
          << ",\"o_totalprice\":" << 10.5 * i << ",\"lineitems\":[";
        if (i % 3 != 0) {
          f << "{\"l_orderkey\":" << i << ",\"l_linenumber\":1,\"l_quantity\":" << 2.5 + i
            << ",\"l_extendedprice\":30.75,\"l_discount\":0.02,\"l_tax\":0.01,"
               "\"l_shipmode\":\"MAIL\",\"l_comment\":\"one\"}";
          if (i % 2 == 0) {
            f << ",{\"l_orderkey\":" << i << ",\"l_linenumber\":2,\"l_quantity\":" << 7.5 + i
              << ",\"l_extendedprice\":41.5,\"l_discount\":0.03,\"l_tax\":0.02,"
                 "\"l_shipmode\":\"SHIP\",\"l_comment\":\"two\"}";
          }
        }
        f << "]}\n";
      }
    }
    return c.dir;
  }();
  return dir;
}

void RegisterOuterCorpus(QueryEngine* engine) {
  const std::string& dir = OuterCorpusDir();
  auto reg = [&](const std::string& name, const std::string& file, TypePtr type) {
    DatasetInfo info;
    info.name = name;
    info.format = DataFormat::kJSON;
    info.path = dir + "/" + file;
    info.type = std::move(type);
    ASSERT_TRUE(engine->RegisterDataset(info).ok()) << name;
  };
  reg("widow_orders", "widow_orders.json", datagen::OrdersSchema());
  reg("nullkey_lineitem", "nullkey_lineitem.json", datagen::LineitemSchema());
  reg("holey_denorm", "holey_denorm.json", datagen::OrdersDenormSchema());
}

RunInfo RunOuterPlan(const std::function<OpPtr()>& make_plan, ExecMode mode, int threads) {
  EngineOptions opts;
  opts.mode = mode;
  opts.num_threads = threads;
  opts.morsel_rows = kDiffMorselRows;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  RegisterOuterCorpus(&engine);
  auto r = engine.ExecutePlan(make_plan());
  RunInfo info;
  info.status = r.status();
  if (r.ok()) info.result = std::move(*r);
  info.telemetry = engine.telemetry();
  return info;
}

/// Oracle vs generated code across thread counts, with the generated engine
/// required to actually run (and to say so).
void ExpectJitMatchesInterp(const std::function<OpPtr()>& make_plan, const std::string& what) {
  RunInfo oracle = RunOuterPlan(make_plan, ExecMode::kInterp, 1);
  ASSERT_TRUE(oracle.status.ok()) << what << "\n" << oracle.status.ToString();
  for (int threads : {1, 2, 4}) {
    RunInfo jit = RunOuterPlan(make_plan, ExecMode::kJIT, threads);
    ASSERT_TRUE(jit.status.ok()) << what << "\n" << jit.status.ToString();
    ExpectIdentical(oracle.result, jit.result, what + " @ threads=" + std::to_string(threads));
    EXPECT_TRUE(jit.telemetry.used_jit)
        << what << " fell back: " << jit.telemetry.fallback_reason;
    EXPECT_TRUE(jit.telemetry.jit_parallel) << what;
    EXPECT_TRUE(jit.telemetry.fallback_reason.empty()) << jit.telemetry.fallback_reason;
    EXPECT_GT(jit.telemetry.morsels, 0u) << what;
  }
}

ExprPtr Proj(const char* var, const char* field) { return Expr::Proj(Expr::Var(var), field); }

OpPtr WidowOuterJoin(const char* probe_ds) {
  OpPtr scan_o = Operator::Scan("widow_orders", "o");
  OpPtr scan_l = Operator::Scan(probe_ds, "l");
  ExprPtr pred =
      Expr::Bin(BinOp::kEq, Proj("o", "o_orderkey"), Proj("l", "l_orderkey"));
  return Operator::Join(scan_o, scan_l, pred, /*outer=*/true);
}

TEST(JitOuterJoin, BagOutputWithNullProbeCellsCellIdentical) {
  auto make_plan = [] {
    ExprPtr rec = Expr::Record({"key", "price", "qty"},
                               {Proj("o", "o_orderkey"), Proj("o", "o_totalprice"),
                                Proj("l", "l_quantity")});
    return Operator::Reduce(WidowOuterJoin("lineitem_json"), {{Monoid::kBag, rec, "rows"}});
  };
  ExpectJitMatchesInterp(make_plan, "outer join bag");
  // Sanity: the widows actually exercise the drain — their probe cells are
  // SQL null in the merged result.
  RunInfo jit = RunOuterPlan(make_plan, ExecMode::kJIT, 2);
  ASSERT_TRUE(jit.status.ok());
  size_t null_cells = 0;
  for (const auto& row : jit.result.rows) null_cells += row[2].is_null() ? 1 : 0;
  EXPECT_EQ(null_cells, 7u) << "one drained row per widow order";
}

TEST(JitOuterJoin, ScalarAggsSkipNullDrainInputs) {
  // count sees every drained row; max/sum over the probe side must ignore
  // them (null inputs never contribute to value monoids).
  auto make_plan = [] {
    return Operator::Reduce(WidowOuterJoin("lineitem_json"),
                            {{Monoid::kCount, nullptr, "n"},
                             {Monoid::kMax, Proj("l", "l_quantity"), "maxq"},
                             {Monoid::kSum, Proj("l", "l_extendedprice"), "sump"}});
  };
  ExpectJitMatchesInterp(make_plan, "outer join scalar aggs");
}

TEST(JitOuterJoin, GroupByAboveDrainCellIdentical) {
  // Group on a build-side key: drained widows form their own groups whose
  // probe-side aggregates stay empty (null result cells).
  auto make_plan = [] {
    OpPtr nest = Operator::Nest(WidowOuterJoin("lineitem_json"), Proj("o", "o_orderkey"),
                                "key", {{Monoid::kCount, nullptr, "n"},
                                        {Monoid::kMax, Proj("l", "l_quantity"), "maxq"}},
                                nullptr, "g");
    ExprPtr rec = Expr::Record(
        {"key", "n", "maxq"}, {Proj("g", "key"), Proj("g", "n"), Proj("g", "maxq")});
    return Operator::Reduce(nest, {{Monoid::kBag, rec, "rows"}});
  };
  ExpectJitMatchesInterp(make_plan, "outer join group-by");
}

TEST(JitOuterJoin, NullGroupKeyFromDrainedRows) {
  // Group on a *probe-side* field: every drained widow lands in the SQL-null
  // key group, exactly like the interpreter's boxed Null key.
  auto make_plan = [] {
    OpPtr nest = Operator::Nest(WidowOuterJoin("lineitem_json"), Proj("l", "l_linenumber"),
                                "ln", {{Monoid::kCount, nullptr, "n"}}, nullptr, "g");
    ExprPtr rec = Expr::Record({"ln", "n"}, {Proj("g", "ln"), Proj("g", "n")});
    return Operator::Reduce(nest, {{Monoid::kBag, rec, "rows"}});
  };
  ExpectJitMatchesInterp(make_plan, "outer join null group key");
}

TEST(JitOuterJoin, NullKeyProbeRowsMatchNothing) {
  // Probe rows whose JSON key field is absent are SQL-null keys: they match
  // nothing (inner and outer alike) in both engines.
  for (bool outer : {false, true}) {
    auto make_plan = [outer] {
      OpPtr scan_o = Operator::Scan("widow_orders", "o");
      OpPtr scan_l = Operator::Scan("nullkey_lineitem", "l");
      ExprPtr pred =
          Expr::Bin(BinOp::kEq, Proj("o", "o_orderkey"), Proj("l", "l_orderkey"));
      OpPtr join = Operator::Join(scan_o, scan_l, pred, outer);
      return Operator::Reduce(join, {{Monoid::kCount, nullptr, "n"},
                                     {Monoid::kSum, Proj("l", "l_quantity"), "sumq"}});
    };
    ExpectJitMatchesInterp(make_plan, outer ? "null-key probe (outer)"
                                            : "null-key probe (inner)");
  }
}

TEST(JitOuterJoin, NullKeyBuildRowsDrainWithNullKeyCells) {
  // Build rows with an absent key never match but an outer join still keeps
  // them for the drain — emitting the key column itself as SQL null (the
  // null flag round-trips through the payload mask).
  auto make_plan = [] {
    OpPtr scan_l = Operator::Scan("nullkey_lineitem", "l");
    OpPtr scan_o = Operator::Scan("orders_json", "o");
    ExprPtr pred =
        Expr::Bin(BinOp::kEq, Proj("l", "l_orderkey"), Proj("o", "o_orderkey"));
    OpPtr join = Operator::Join(scan_l, scan_o, pred, /*outer=*/true);
    ExprPtr rec = Expr::Record({"lkey", "qty", "oprice"},
                               {Proj("l", "l_orderkey"), Proj("l", "l_quantity"),
                                Proj("o", "o_totalprice")});
    return Operator::Reduce(join, {{Monoid::kBag, rec, "rows"}});
  };
  ExpectJitMatchesInterp(make_plan, "null-key build rows");
  RunInfo jit = RunOuterPlan(make_plan, ExecMode::kJIT, 2);
  ASSERT_TRUE(jit.status.ok());
  size_t null_keys = 0;
  for (const auto& row : jit.result.rows) null_keys += row[0].is_null() ? 1 : 0;
  EXPECT_EQ(null_keys, 12u) << "every third of 36 rows lacks the key";
}

TEST(JitOuterUnnest, EmptyCollectionsEmitNullElementRows) {
  // Outer unnest over arrays where every third is empty: the outer row is
  // emitted once with a null element in both engines.
  auto make_plan = [] {
    OpPtr scan = Operator::Scan("holey_denorm", "o");
    OpPtr unnest =
        Operator::Unnest(scan, {"o", "lineitems"}, "l", nullptr, /*outer=*/true);
    ExprPtr rec = Expr::Record({"okey", "qty"},
                               {Proj("o", "o_orderkey"), Proj("l", "l_quantity")});
    return Operator::Reduce(unnest, {{Monoid::kBag, rec, "rows"}});
  };
  ExpectJitMatchesInterp(make_plan, "outer unnest bag");
  RunInfo jit = RunOuterPlan(make_plan, ExecMode::kJIT, 2);
  ASSERT_TRUE(jit.status.ok());
  size_t null_elems = 0;
  for (const auto& row : jit.result.rows) null_elems += row[1].is_null() ? 1 : 0;
  EXPECT_EQ(null_elems, 7u) << "orders 3,6,9,12,15,18,21 have empty arrays";
}

TEST(JitOuterUnnest, AggregatesOverNullElements) {
  auto make_plan = [] {
    OpPtr scan = Operator::Scan("holey_denorm", "o");
    OpPtr unnest =
        Operator::Unnest(scan, {"o", "lineitems"}, "l", nullptr, /*outer=*/true);
    return Operator::Reduce(unnest, {{Monoid::kCount, nullptr, "n"},
                                     {Monoid::kMin, Proj("l", "l_quantity"), "minq"},
                                     {Monoid::kSum, Proj("o", "o_totalprice"), "sump"}});
  };
  ExpectJitMatchesInterp(make_plan, "outer unnest aggs");
}

TEST(JitOuterJoin, WarmCacheStaysCellIdentical) {
  // Bitmaps, drain state, and set/dedup state are per-run, never baked into
  // the instruction stream: a warm (cache-hit) rerun of an outer join is
  // cell-identical with compile_ms == 0.
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.num_threads = 2;
  opts.morsel_rows = kDiffMorselRows;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  RegisterOuterCorpus(&engine);
  auto make_plan = [] {
    ExprPtr rec = Expr::Record({"key", "qty"},
                               {Proj("o", "o_orderkey"), Proj("l", "l_quantity")});
    return Operator::Reduce(WidowOuterJoin("lineitem_json"), {{Monoid::kBag, rec, "rows"}});
  };
  auto cold = engine.ExecutePlan(make_plan());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(engine.telemetry().used_jit) << engine.telemetry().fallback_reason;
  EXPECT_FALSE(engine.telemetry().jit_cache_hit);
  auto warm = engine.ExecutePlan(make_plan());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(engine.telemetry().used_jit);
  EXPECT_TRUE(engine.telemetry().jit_cache_hit);
  EXPECT_EQ(engine.telemetry().jit_compile_ms, 0.0);
  ExpectIdentical(*cold, *warm, "outer join cold vs warm cache");
}

TEST(JitOuterJoin, ShardedEnginesDeclineButStillRunJit) {
  // Outer joins stay unshardable (the drain needs a global bitmap view);
  // the coordinator declines and the plan takes the normal parallel-JIT
  // path instead of the interpreter.
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.num_threads = 2;
  opts.num_shards = 2;
  opts.morsel_rows = kDiffMorselRows;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  RegisterOuterCorpus(&engine);
  OpPtr plan = Operator::Reduce(WidowOuterJoin("lineitem_json"),
                                {{Monoid::kCount, nullptr, "n"}});
  auto r = engine.ExecutePlan(std::move(plan));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(engine.telemetry().shards_used, 0);
  EXPECT_TRUE(engine.telemetry().used_jit) << engine.telemetry().fallback_reason;
  EXPECT_TRUE(engine.telemetry().jit_parallel);
}

TEST(JitSetOutput, LegacyWholeRelationModeDeduplicates) {
  // A Select above a Nest is not morsel-parallelizable, so the set root
  // compiles through the legacy whole-relation engine — whose row emission
  // dedups via the hashed result_row_set, first appearance winning, exactly
  // like the interpreter's set Aggregator.
  auto make_plan = [] {
    OpPtr scan = Operator::Scan("lineitem_bincol", "l");
    OpPtr nest = Operator::Nest(scan, Proj("l", "l_linenumber"), "ln",
                                {{Monoid::kCount, nullptr, "n"}}, nullptr, "g");
    OpPtr sel = Operator::Select(
        std::move(nest), Expr::Bin(BinOp::kGt, Proj("g", "n"), Expr::Int(0)));
    return Operator::Reduce(std::move(sel),
                            {{Monoid::kSet, Expr::Bin(BinOp::kMod, Proj("g", "ln"),
                                                      Expr::Int(3)),
                              "lns"}});
  };
  RunInfo oracle = RunPlanConfig(make_plan, ExecMode::kInterp, 1);
  ASSERT_TRUE(oracle.status.ok()) << oracle.status.ToString();
  RunInfo jit = RunPlanConfig(make_plan, ExecMode::kJIT, 1);
  ASSERT_TRUE(jit.status.ok()) << jit.status.ToString();
  ExpectIdentical(oracle.result, jit.result, "legacy set output");
  EXPECT_TRUE(jit.telemetry.used_jit) << jit.telemetry.fallback_reason;
  EXPECT_FALSE(jit.telemetry.jit_parallel) << "Nest mid-chain takes the legacy engine";
  EXPECT_LE(jit.result.rows.size(), 3u) << "mod-3 keys must deduplicate";
}

// ---------------------------------------------------------------------------
// Telemetry (headline bugfix): a JIT→interpreter fallback must record the
// failed codegen attempt's cost in compile_ms / jit_compile_ms and keep it
// out of execute_ms — previously the attempt was silently folded into
// execute_ms with compile_ms stuck at 0.
// ---------------------------------------------------------------------------

TEST(JitFallbackTelemetry, FailedCompileAttemptIsRecorded) {
  // A string-keyed equi join has no generated fast path (the packed radix
  // table holds int64 keys only): codegen aborts and the morsel-parallel
  // interpreter serves the plan.
  auto make_plan = [] {
    OpPtr scan_o = Operator::Scan("orders_json", "o");
    OpPtr scan_l = Operator::Scan("lineitem_json", "l");
    ExprPtr pred =
        Expr::Bin(BinOp::kEq, Proj("o", "o_comment"), Proj("l", "l_comment"));
    OpPtr join = Operator::Join(scan_o, scan_l, pred, /*outer=*/false);
    return Operator::Reduce(join, {{Monoid::kCount, nullptr, "n"}});
  };
  RunInfo jit = RunPlanConfig(make_plan, ExecMode::kJIT, 2);
  ASSERT_TRUE(jit.status.ok()) << jit.status.ToString();
  EXPECT_FALSE(jit.telemetry.used_jit);
  EXPECT_FALSE(jit.telemetry.fallback_reason.empty());
  EXPECT_GT(jit.telemetry.compile_ms, 0.0)
      << "the aborted codegen attempt cost real time that must be attributed";
  EXPECT_EQ(jit.telemetry.jit_compile_ms, jit.telemetry.compile_ms);
  EXPECT_GE(jit.telemetry.execute_ms, 0.0);
  // Against the same plan in interpreter mode the fallback stays correct.
  RunInfo interp = RunPlanConfig(make_plan, ExecMode::kInterp, 2);
  ASSERT_TRUE(interp.status.ok());
  ExpectIdentical(interp.result, jit.result, "string-key fallback");
}

// ---------------------------------------------------------------------------
// Fixed-seed randomized-plan property sweep: serial JIT vs parallel JIT vs
// interpreter. Plans are generated from a small grammar (dataset × agg set ×
// predicate conjunction × optional join × optional group-by × projection
// form) with a fixed seed — no wall-clock or fresh entropy anywhere, so a
// failure reproduces exactly.
// ---------------------------------------------------------------------------

std::string RandomQuery(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> pick(0, 1 << 20);
  std::uniform_real_distribution<double> qty(1, 50), disc(0, 0.1), tax(0, 0.08);
  const char* datasets[] = {"lineitem_bincol", "lineitem_binrow", "lineitem_csv",
                            "lineitem_json"};
  std::string ds = datasets[pick(rng) % 4];
  bool join = pick(rng) % 4 == 0;       // join with orders on orderkey
  bool group = pick(rng) % 3 == 0;      // group by linenumber/shipmode
  bool project = !group && pick(rng) % 4 == 0;  // bag projection rows

  std::ostringstream q;
  q.precision(6);
  q << "SELECT ";
  std::string lp = join ? "l." : "";
  std::string group_key;
  if (group) group_key = lp + (pick(rng) % 2 == 0 ? "l_linenumber" : "l_shipmode");
  if (project) {
    q << lp << "l_orderkey, " << lp << "l_quantity, " << lp << "l_extendedprice";
  } else {
    if (group) q << group_key << ", ";
    std::vector<std::string> aggs = {"count(*)"};
    if (pick(rng) % 2 == 0) aggs.push_back("sum(" + lp + "l_quantity)");
    if (pick(rng) % 2 == 0) aggs.push_back("max(" + lp + "l_extendedprice)");
    if (pick(rng) % 2 == 0) aggs.push_back("min(" + lp + "l_discount)");
    if (pick(rng) % 3 == 0) {
      aggs.push_back("sum(" + lp + "l_extendedprice * (1.0 - " + lp + "l_discount))");
    }
    if (join && pick(rng) % 2 == 0) aggs.push_back("max(o.o_totalprice)");
    for (size_t i = 0; i < aggs.size(); ++i) q << (i > 0 ? ", " : "") << aggs[i];
  }
  q << " FROM ";
  if (join) {
    q << "orders_" << (pick(rng) % 2 == 0 ? "bincol" : "json") << " o JOIN " << ds
      << " l ON o.o_orderkey = l.l_orderkey";
  } else {
    q << ds;
  }
  q << " WHERE " << lp << "l_orderkey < " << pick(rng) % 70;
  if (pick(rng) % 2 == 0) q << " and " << lp << "l_quantity < " << qty(rng);
  if (pick(rng) % 3 == 0) q << " and " << lp << "l_discount < " << disc(rng);
  if (pick(rng) % 4 == 0) q << " and " << lp << "l_tax >= " << tax(rng);
  if (group) q << " GROUP BY " << group_key;
  return q.str();
}

TEST(JitDifferentialProperty, RandomPlansAgreeAcrossEngines) {
  std::mt19937_64 rng(20160815);  // fixed seed: the paper's VLDB year+month
  int jit_runs = 0;
  for (int trial = 0; trial < 24; ++trial) {
    std::string q = RandomQuery(rng);
    RunInfo oracle = RunConfig(q, ExecMode::kInterp, 1);
    ASSERT_TRUE(oracle.status.ok()) << q << "\n" << oracle.status.ToString();
    RunInfo serial_jit = RunConfig(q, ExecMode::kJIT, 1);
    ASSERT_TRUE(serial_jit.status.ok()) << q << "\n" << serial_jit.status.ToString();
    ExpectIdentical(oracle.result, serial_jit.result, q + " @ serial jit");
    if (serial_jit.telemetry.used_jit) ++jit_runs;
    for (int threads : {2, 4}) {
      RunInfo parallel_jit = RunConfig(q, ExecMode::kJIT, threads);
      ASSERT_TRUE(parallel_jit.status.ok()) << q << "\n" << parallel_jit.status.ToString();
      ExpectIdentical(serial_jit.result, parallel_jit.result,
                      q + " @ jit threads=" + std::to_string(threads));
      EXPECT_EQ(serial_jit.telemetry.used_jit, parallel_jit.telemetry.used_jit) << q;
    }
  }
  // The generator must mostly produce JIT-able plans or the sweep is hollow.
  EXPECT_GT(jit_runs, 18) << "random plan generator fell back too often";
}

// ---------------------------------------------------------------------------
// Telemetry regression: num_threads > 1 + JIT must report the engine that
// actually ran — never the silent interpreter fallback this PR removed.
// ---------------------------------------------------------------------------

TEST(JitParallelTelemetry, ParallelJitReportsItself) {
  const std::string q =
      "SELECT count(*), sum(l_extendedprice) FROM lineitem_json WHERE l_orderkey < 1000000";
  for (int threads : {2, 4}) {
    RunInfo jit = RunConfig(q, ExecMode::kJIT, threads);
    ASSERT_TRUE(jit.status.ok()) << jit.status.ToString();
    EXPECT_TRUE(jit.telemetry.used_jit)
        << "num_threads=" << threads
        << " + JIT reported interpreter execution: " << jit.telemetry.fallback_reason;
    EXPECT_TRUE(jit.telemetry.jit_parallel);
    EXPECT_TRUE(jit.telemetry.fallback_reason.empty()) << jit.telemetry.fallback_reason;
    EXPECT_GT(jit.telemetry.morsels, 1u);
    EXPECT_GE(jit.telemetry.threads_used, 1);
    EXPECT_LE(jit.telemetry.threads_used, threads);
  }
  // num_threads == 1 drives the same morsel frame through generated code.
  RunInfo one = RunConfig(q, ExecMode::kJIT, 1);
  ASSERT_TRUE(one.status.ok());
  EXPECT_TRUE(one.telemetry.used_jit);
  EXPECT_TRUE(one.telemetry.jit_parallel);
  EXPECT_EQ(one.telemetry.threads_used, 1);
  EXPECT_GT(one.telemetry.morsels, 1u);
}

// ---------------------------------------------------------------------------
// Composition with sharding: shards run the same generated pipelines over
// their morsel slices; results stay cell-identical to the unsharded JIT run
// and telemetry reports the JIT actually ran on the shards.
// ---------------------------------------------------------------------------

TEST(JitParallelSharded, JitPipelinesComposeWithShards) {
  const std::vector<std::string> queries = {
      "SELECT l_orderkey, l_quantity FROM lineitem_csv WHERE l_orderkey < 1000000",
      "SELECT count(*), sum(l_tax), max(l_quantity) FROM lineitem_json WHERE l_orderkey < 40",
      "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_bincol "
      "GROUP BY l_linenumber",
      "SELECT count(*), max(o.o_totalprice) FROM orders_json o JOIN lineitem_json l "
      "ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 35",
  };
  for (const auto& q : queries) {
    RunInfo unsharded = RunConfig(q, ExecMode::kJIT, 2, /*shards=*/0);
    ASSERT_TRUE(unsharded.status.ok()) << q << "\n" << unsharded.status.ToString();
    for (int shards : {1, 2, 4}) {
      RunInfo sharded = RunConfig(q, ExecMode::kJIT, 2, shards);
      ASSERT_TRUE(sharded.status.ok()) << q << "\n" << sharded.status.ToString();
      ExpectIdentical(unsharded.result, sharded.result,
                      q + " @ shards=" + std::to_string(shards));
      EXPECT_GT(sharded.telemetry.shards_used, 0) << q;
      EXPECT_TRUE(sharded.telemetry.used_jit)
          << q << " shards fell back: " << sharded.telemetry.fallback_reason;
      EXPECT_TRUE(sharded.telemetry.jit_parallel) << q;
    }
  }
}

// ---------------------------------------------------------------------------
// Tiered asynchronous compilation: a cold query starts on the interpreter
// while its module compiles in the background, then hot-swaps to generated
// code at a morsel boundary. The contract under test: the swap point is
// *invisible* — results are cell-identical to pure-interpreter and pure-JIT
// runs wherever it lands (morsel 0, 1, mid-query, past the end, or never
// because the compile failed), at every thread and shard count, and the
// telemetry honestly reports which engine ran how many morsels.
// ---------------------------------------------------------------------------

std::unique_ptr<QueryEngine> MakeTieredEngine(const jit::TieredOptions& topts, int threads,
                                              int shards = 0) {
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.num_threads = threads;
  opts.num_shards = shards;
  opts.morsel_rows = kDiffMorselRows;
  opts.tiered = true;
  opts.tiered_opts = topts;
  auto engine = std::make_unique<QueryEngine>(opts);
  testutil::RegisterAll(engine.get());
  return engine;
}

/// One Execute() on a caller-owned engine (tiered tests rerun the same
/// engine to exercise the shared cache and the background compiler).
RunInfo RunOn(QueryEngine* engine, const std::string& q) {
  auto r = engine->Execute(q);
  RunInfo info;
  info.status = r.status();
  if (r.ok()) info.result = std::move(*r);
  info.telemetry = engine->telemetry();
  return info;
}

TEST(TieredSwap, ForcedSwapBoundaryIsInvisible) {
  const std::string q =
      "SELECT l_linenumber, count(*), sum(l_extendedprice), min(l_discount) "
      "FROM lineitem_json WHERE l_orderkey < 45 GROUP BY l_linenumber";
  RunInfo oracle = RunConfig(q, ExecMode::kInterp, 1);
  ASSERT_TRUE(oracle.status.ok()) << oracle.status.ToString();
  RunInfo pure_jit = RunConfig(q, ExecMode::kJIT, 2);
  ASSERT_TRUE(pure_jit.status.ok()) << pure_jit.status.ToString();
  const uint64_t n = pure_jit.telemetry.morsels;
  ASSERT_GT(n, 8u) << "corpus too small to place a mid-query swap";

  // k = 0 (swap before any interpreter work), k = 1, k = mid-query. Each
  // run interprets exactly k morsels, then blocks on the background compile
  // and hot-swaps — the result must not betray the boundary.
  for (uint64_t k : {uint64_t{0}, uint64_t{1}, n / 2}) {
    jit::TieredOptions topts;
    topts.force_swap_after_morsels = k;
    auto engine = MakeTieredEngine(topts, /*threads=*/2);
    RunInfo tiered = RunOn(engine.get(), q);
    ASSERT_TRUE(tiered.status.ok()) << "k=" << k << ": " << tiered.status.ToString();
    ExpectIdentical(oracle.result, tiered.result, "tiered swap @ k=" + std::to_string(k));
    ExpectIdentical(pure_jit.result, tiered.result,
                    "tiered vs pure jit @ k=" + std::to_string(k));
    EXPECT_EQ(tiered.telemetry.morsels_interpreted, k);
    EXPECT_EQ(tiered.telemetry.morsels_jit, n - k);
    EXPECT_EQ(tiered.telemetry.morsels, n);
    EXPECT_EQ(tiered.telemetry.compile_tier, 1) << "k=" << k;
    EXPECT_TRUE(tiered.telemetry.used_jit);
    EXPECT_TRUE(tiered.telemetry.jit_parallel);
    EXPECT_TRUE(tiered.telemetry.fallback_reason.empty())
        << tiered.telemetry.fallback_reason;
    EXPECT_GT(tiered.telemetry.swap_ms, 0.0) << "swap happened, swap_ms must say when";
    EXPECT_GT(tiered.telemetry.compile_ms, 0.0)
        << "the consumed background compile cost real time";
    EXPECT_EQ(tiered.telemetry.jit_compile_ms, tiered.telemetry.compile_ms);
    if (k > 0) {
      // The acceptance shape: a genuinely mixed run — both engines ran.
      EXPECT_GT(tiered.telemetry.morsels_interpreted, 0u);
      EXPECT_GT(tiered.telemetry.morsels_jit, 0u);
    }
  }
}

TEST(TieredSwap, SwapIsInvisibleAcrossThreadsAndShards) {
  const std::vector<std::string> queries = {
      "SELECT count(*), sum(l_tax), max(l_quantity) FROM lineitem_json WHERE l_orderkey < 40",
      "SELECT l_orderkey, l_quantity FROM lineitem_csv WHERE l_orderkey < 1000000",
      "SELECT count(*), max(o.o_totalprice) FROM orders_json o JOIN lineitem_bincol l "
      "ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 35",
  };
  for (const auto& q : queries) {
    RunInfo oracle = RunConfig(q, ExecMode::kInterp, 1);
    ASSERT_TRUE(oracle.status.ok()) << q << "\n" << oracle.status.ToString();
    // Probe-side morsel count: decides whether a shard's slice is big
    // enough for its forced swap to actually land (slice > k morsels).
    RunInfo pure_jit = RunConfig(q, ExecMode::kJIT, 2);
    ASSERT_TRUE(pure_jit.status.ok()) << q;
    const uint64_t n = pure_jit.telemetry.morsels;
    jit::TieredOptions topts;
    topts.force_swap_after_morsels = 3;  // every controller interprets 3, then swaps
    for (int threads : {1, 2, 4}) {
      auto engine = MakeTieredEngine(topts, threads);
      RunInfo tiered = RunOn(engine.get(), q);
      ASSERT_TRUE(tiered.status.ok()) << q << "\n" << tiered.status.ToString();
      ExpectIdentical(oracle.result, tiered.result,
                      q + " @ tiered threads=" + std::to_string(threads));
      EXPECT_GT(tiered.telemetry.morsels_interpreted, 0u) << q;
      EXPECT_GT(tiered.telemetry.morsels_jit, 0u) << q;
    }
    // Each shard runs its own tiered controller over its slice and swaps
    // independently (after 1 interpreted morsel here — shard slices are
    // small); the merged result still cannot depend on any of it.
    topts.force_swap_after_morsels = 1;
    for (int shards : {1, 2, 4}) {
      auto engine = MakeTieredEngine(topts, /*threads=*/2, shards);
      RunInfo tiered = RunOn(engine.get(), q);
      ASSERT_TRUE(tiered.status.ok()) << q << "\n" << tiered.status.ToString();
      ExpectIdentical(oracle.result, tiered.result,
                      q + " @ tiered shards=" + std::to_string(shards));
      EXPECT_GT(tiered.telemetry.shards_used, 0) << q;
      EXPECT_GT(tiered.telemetry.morsels_interpreted, 0u) << q;
      if (n / static_cast<uint64_t>(shards) > 1) {
        // Every slice holds > 1 morsel, so every shard swaps mid-slice.
        EXPECT_GT(tiered.telemetry.morsels_jit, 0u)
            << q << " shards=" << shards << " n=" << n;
        EXPECT_GT(tiered.telemetry.compile_tier, 0) << q << " shards=" << shards;
      }
    }
  }
}

TEST(TieredSwap, CompileOutlivingTheQueryIsHarmlessAndWarmsTheCache) {
  const std::string q =
      "SELECT count(*), sum(l_extendedprice) FROM lineitem_json WHERE l_orderkey < 50";
  RunInfo oracle = RunConfig(q, ExecMode::kInterp, 1);
  ASSERT_TRUE(oracle.status.ok());

  // A 300 ms artificial compile delay dwarfs the ~240-row interpretation:
  // the query finishes before the module exists, and nothing blocks on it.
  jit::TieredOptions topts;
  topts.compile_delay_ms = 300;
  auto engine = MakeTieredEngine(topts, /*threads=*/2);
  RunInfo cold = RunOn(engine.get(), q);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  ExpectIdentical(oracle.result, cold.result, "tiered, compile outlives query");
  EXPECT_EQ(cold.telemetry.morsels_jit, 0u);
  EXPECT_GT(cold.telemetry.morsels_interpreted, 0u);
  EXPECT_EQ(cold.telemetry.compile_tier, 0);
  EXPECT_FALSE(cold.telemetry.used_jit);
  EXPECT_EQ(cold.telemetry.compile_ms, 0.0) << "unconsumed compile must not be billed";
  EXPECT_EQ(cold.telemetry.swap_ms, 0.0);
  EXPECT_NE(cold.telemetry.fallback_reason.find("did not land"), std::string::npos)
      << cold.telemetry.fallback_reason;

  // The orphaned compile still publishes into the shared cache: after the
  // background thread drains, the same engine serves the query warm — pure
  // generated code from morsel 0, no interpreter at all.
  ASSERT_NE(engine->tiered_compiler(), nullptr);
  engine->tiered_compiler()->Drain();
  RunInfo warm = RunOn(engine.get(), q);
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  ExpectIdentical(oracle.result, warm.result, "tiered warm rerun");
  EXPECT_TRUE(warm.telemetry.jit_cache_hit);
  EXPECT_EQ(warm.telemetry.morsels_interpreted, 0u);
  EXPECT_GT(warm.telemetry.morsels_jit, 0u);
  EXPECT_EQ(warm.telemetry.compile_tier, 1);
  EXPECT_TRUE(warm.telemetry.used_jit);
}

TEST(TieredSwap, FailedCompileInterpreterCompletesSilently) {
  // The string-keyed equi join is chunk-decomposable (the tiered controller
  // accepts it) but has no generated fast path: the background compile
  // fails, and the interpreter must simply finish the query — the recorded
  // compile_ms being the only trace of the attempt.
  auto make_plan = [] {
    OpPtr scan_o = Operator::Scan("orders_json", "o");
    OpPtr scan_l = Operator::Scan("lineitem_json", "l");
    ExprPtr pred =
        Expr::Bin(BinOp::kEq, Proj("o", "o_comment"), Proj("l", "l_comment"));
    OpPtr join = Operator::Join(scan_o, scan_l, pred, /*outer=*/false);
    return Operator::Reduce(join, {{Monoid::kCount, nullptr, "n"}});
  };
  RunInfo oracle = RunPlanConfig(make_plan, ExecMode::kInterp, 2);
  ASSERT_TRUE(oracle.status.ok());

  jit::TieredOptions topts;
  // Force the controller to consume the (failed) ticket after one morsel so
  // the failure is observed mid-query, not raced past.
  topts.force_swap_after_morsels = 1;
  auto engine = MakeTieredEngine(topts, /*threads=*/2);
  auto r = engine->ExecutePlan(make_plan());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectIdentical(oracle.result, *r, "tiered, failed compile");
  const QueryTelemetry& t = engine->telemetry();
  EXPECT_EQ(t.morsels_jit, 0u);
  EXPECT_GT(t.morsels_interpreted, 0u);
  EXPECT_EQ(t.compile_tier, 0);
  EXPECT_FALSE(t.used_jit);
  EXPECT_GT(t.compile_ms, 0.0)
      << "the failed background compile cost real time that must be attributed";
  EXPECT_NE(t.fallback_reason.find("compile failed"), std::string::npos)
      << t.fallback_reason;
}

TEST(TieredSwap, HotSignatureEarnsTierTwo) {
  const std::string q =
      "SELECT count(*), max(l_quantity), sum(l_tax) FROM lineitem_bincol WHERE l_orderkey < 30";
  jit::TieredOptions topts;
  topts.tier2_hit_threshold = 2;
  auto engine = MakeTieredEngine(topts, /*threads=*/2);
  ASSERT_NE(engine->tiered_compiler(), nullptr);

  // Cold run compiles tier 1 in the background and publishes it.
  RunInfo cold = RunOn(engine.get(), q);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  engine->tiered_compiler()->Drain();

  // Warm runs accumulate cache hits; crossing the threshold enqueues the
  // aggressive recompile behind the same key.
  RunInfo warm1 = RunOn(engine.get(), q);
  ASSERT_TRUE(warm1.status.ok());
  EXPECT_TRUE(warm1.telemetry.jit_cache_hit);
  EXPECT_EQ(warm1.telemetry.compile_tier, 1);
  RunInfo warm2 = RunOn(engine.get(), q);
  ASSERT_TRUE(warm2.status.ok());
  EXPECT_EQ(warm2.telemetry.compile_tier, 1);
  engine->tiered_compiler()->Drain();

  ASSERT_NE(engine->jit_cache(), nullptr);
  EXPECT_GE(engine->jit_cache()->stats().promotions, 1u)
      << "crossing tier2_hit_threshold must promote the signature";
  RunInfo promoted = RunOn(engine.get(), q);
  ASSERT_TRUE(promoted.status.ok());
  EXPECT_TRUE(promoted.telemetry.jit_cache_hit);
  EXPECT_EQ(promoted.telemetry.compile_tier, 2)
      << "the promoted module must serve behind the same cache key";
  EXPECT_TRUE(promoted.telemetry.used_jit);
  EXPECT_EQ(promoted.telemetry.morsels_interpreted, 0u);
  ExpectIdentical(cold.result, promoted.result, "tier-1 vs tier-2 module");
}

// ---------------------------------------------------------------------------
// Partitioned parallel joins: the optimizer's skew-aware strategy pass must
// pick the partitioned layout on skewed build sides (once stats are warm),
// and both layouts must stay cell-identical — to each other, to the
// interpreter, across num_threads ∈ {1, 2, 4} — on Zipf, single-heavy-hitter,
// and all-null-key corpora.
// ---------------------------------------------------------------------------

/// One engine with the skew corpora and a fixed join-strategy override. The
/// query runs `warmups + 1` times on the same engine: stats publish on the
/// first cold dataset access — after that run's Optimize — so only the
/// final (returned) run's strategy pass sees the build side's ndv.
RunInfo RunSkewQuery(const std::string& q, ExecMode mode, int threads,
                     JoinStrategyOverride strat = JoinStrategyOverride::kAuto,
                     int warmups = 1) {
  EngineOptions opts;
  opts.mode = mode;
  opts.num_threads = threads;
  opts.morsel_rows = kDiffMorselRows;
  opts.optimizer.join_strategy = strat;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  testutil::RegisterSkewCorpus(&engine);
  for (int i = 0; i < warmups; ++i) {
    auto w = engine.Execute(q);
    EXPECT_TRUE(w.ok()) << w.status().ToString();
  }
  auto r = engine.Execute(q);
  RunInfo info;
  info.status = r.status();
  if (r.ok()) info.result = std::move(*r);
  info.telemetry = engine.telemetry();
  return info;
}

const char* kZipfJoinQuery =
    "SELECT count(*), sum(o.o_totalprice), max(l.l_extendedprice) FROM zipf_orders o "
    "JOIN skew_lineitem l ON o.o_orderkey = l.l_orderkey WHERE l.l_quantity < 45.0";
const char* kHeavyJoinQuery =
    "SELECT count(*), sum(l.l_extendedprice) FROM heavy_orders o "
    "JOIN skew_lineitem l ON o.o_orderkey = l.l_orderkey";

TEST(PartitionedJoin, SkewedBuildSelectsPartitionedLayout) {
  RunInfo jit = RunSkewQuery(kZipfJoinQuery, ExecMode::kJIT, 2);
  ASSERT_TRUE(jit.status.ok()) << jit.status.ToString();
  EXPECT_TRUE(jit.telemetry.used_jit) << jit.telemetry.fallback_reason;
  EXPECT_EQ(jit.telemetry.join_strategy, "partitioned") << jit.telemetry.plan;

  // A small uniform build (60 orders) stays on the shared layout.
  RunInfo small = RunSkewQuery(
      "SELECT count(*) FROM orders_json o JOIN lineitem_json l ON "
      "o.o_orderkey = l.l_orderkey",
      ExecMode::kJIT, 2);
  ASSERT_TRUE(small.status.ok()) << small.status.ToString();
  EXPECT_EQ(small.telemetry.join_strategy, "shared") << small.telemetry.plan;

  // The cold (stat-less) first run of the same skewed query must also have
  // reported a strategy — shared, since the optimizer had nothing to go on.
  RunInfo cold = RunSkewQuery(kZipfJoinQuery, ExecMode::kJIT, 2,
                              JoinStrategyOverride::kAuto, /*warmups=*/0);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_EQ(cold.telemetry.join_strategy, "shared") << "cold runs have no stats";
}

TEST(PartitionedJoin, CellIdenticalAcrossStrategiesAndThreads) {
  for (const char* q : {kZipfJoinQuery, kHeavyJoinQuery}) {
    RunInfo oracle =
        RunSkewQuery(q, ExecMode::kInterp, 1, JoinStrategyOverride::kForceShared);
    ASSERT_TRUE(oracle.status.ok()) << oracle.status.ToString();
    for (JoinStrategyOverride strat :
         {JoinStrategyOverride::kForceShared, JoinStrategyOverride::kForcePartitioned,
          JoinStrategyOverride::kAuto}) {
      for (int threads : {1, 2, 4}) {
        const std::string ctx = std::string(q) + " strat=" +
                                std::to_string(static_cast<int>(strat)) +
                                " threads=" + std::to_string(threads);
        RunInfo jit = RunSkewQuery(q, ExecMode::kJIT, threads, strat);
        ASSERT_TRUE(jit.status.ok()) << ctx << "\n" << jit.status.ToString();
        EXPECT_TRUE(jit.telemetry.used_jit) << ctx << ": " << jit.telemetry.fallback_reason;
        ExpectIdentical(oracle.result, jit.result, "jit " + ctx);
        RunInfo interp = RunSkewQuery(q, ExecMode::kInterp, threads, strat);
        ASSERT_TRUE(interp.status.ok()) << ctx;
        ExpectIdentical(oracle.result, interp.result, "interp " + ctx);
      }
    }
  }
}

TEST(PartitionedJoin, AllNullBuildKeysMatchNothingInEitherLayout) {
  const std::string q =
      "SELECT count(*) FROM nullkey_orders o JOIN skew_lineitem l ON "
      "o.o_orderkey = l.l_orderkey";
  for (JoinStrategyOverride strat :
       {JoinStrategyOverride::kForceShared, JoinStrategyOverride::kForcePartitioned}) {
    RunInfo jit = RunSkewQuery(q, ExecMode::kJIT, 2, strat);
    ASSERT_TRUE(jit.status.ok()) << jit.status.ToString();
    EXPECT_EQ(jit.result.scalar().i(), 0) << "null keys must match nothing";
    RunInfo interp = RunSkewQuery(q, ExecMode::kInterp, 2, strat);
    ASSERT_TRUE(interp.status.ok());
    ExpectIdentical(interp.result, jit.result, "all-null build keys");
  }
}

TEST(PartitionedJoin, GroupByAboveSkewedJoinCellIdentical) {
  // A Nest above the probe pipeline composes with the partitioned layout:
  // group order comes from the morsel-order partial fold either way.
  const std::string q =
      "SELECT l.l_linenumber, count(*), sum(o.o_totalprice) FROM heavy_orders o "
      "JOIN skew_lineitem l ON o.o_orderkey = l.l_orderkey GROUP BY l.l_linenumber";
  RunInfo oracle =
      RunSkewQuery(q, ExecMode::kInterp, 1, JoinStrategyOverride::kForceShared);
  ASSERT_TRUE(oracle.status.ok()) << oracle.status.ToString();
  for (int threads : {1, 2, 4}) {
    RunInfo jit = RunSkewQuery(q, ExecMode::kJIT, threads,
                               JoinStrategyOverride::kForcePartitioned);
    ASSERT_TRUE(jit.status.ok()) << jit.status.ToString();
    EXPECT_TRUE(jit.telemetry.used_jit) << jit.telemetry.fallback_reason;
    ExpectIdentical(oracle.result, jit.result,
                    "grouped partitioned join @ threads=" + std::to_string(threads));
  }
}

// ---------------------------------------------------------------------------
// Fallback burn-down: non-equi joins and float group keys now compile; a
// plan with several remaining blockers reports every reason, not the first.
// ---------------------------------------------------------------------------

TEST(JitFallbackTelemetry, NonEquiJoinCompiles) {
  auto make_plan = [] {
    OpPtr scan_o = Operator::Scan("orders_json", "o");
    OpPtr scan_l = Operator::Scan("lineitem_json", "l");
    ExprPtr pred =
        Expr::Bin(BinOp::kLt, Proj("o", "o_orderkey"), Proj("l", "l_orderkey"));
    OpPtr join = Operator::Join(scan_o, scan_l, pred, /*outer=*/false);
    return Operator::Reduce(join, {{Monoid::kCount, nullptr, "n"},
                                   {Monoid::kSum, Proj("l", "l_quantity"), "sumq"}});
  };
  RunInfo oracle = RunPlanConfig(make_plan, ExecMode::kInterp, 1);
  ASSERT_TRUE(oracle.status.ok()) << oracle.status.ToString();
  for (int threads : {1, 2, 4}) {
    RunInfo jit = RunPlanConfig(make_plan, ExecMode::kJIT, threads);
    ASSERT_TRUE(jit.status.ok()) << jit.status.ToString();
    EXPECT_TRUE(jit.telemetry.used_jit) << jit.telemetry.fallback_reason;
    EXPECT_TRUE(jit.telemetry.fallback_reason.empty()) << jit.telemetry.fallback_reason;
    ExpectIdentical(oracle.result, jit.result,
                    "non-equi join @ threads=" + std::to_string(threads));
  }
}

TEST(JitFallbackTelemetry, FloatGroupKeysCompile) {
  const std::string q =
      "SELECT l_discount, count(*), sum(l_extendedprice) FROM lineitem_bincol "
      "GROUP BY l_discount";
  RunInfo oracle = RunConfig(q, ExecMode::kInterp, 1);
  ASSERT_TRUE(oracle.status.ok()) << oracle.status.ToString();
  for (int threads : {1, 2, 4}) {
    RunInfo jit = RunConfig(q, ExecMode::kJIT, threads);
    ASSERT_TRUE(jit.status.ok()) << jit.status.ToString();
    EXPECT_TRUE(jit.telemetry.used_jit) << jit.telemetry.fallback_reason;
    EXPECT_TRUE(jit.telemetry.fallback_reason.empty()) << jit.telemetry.fallback_reason;
    ExpectIdentical(oracle.result, jit.result,
                    "float group keys @ threads=" + std::to_string(threads));
  }
}

TEST(JitFallbackTelemetry, AllFallbackReasonsReported) {
  // Two independent blockers in one plan: a string-keyed equi join and a
  // collection-monoid Nest. The fallback reason must list both,
  // semicolon-joined — previously only the first traversal hit surfaced.
  auto make_plan = [] {
    OpPtr scan_o = Operator::Scan("orders_json", "o");
    OpPtr scan_l = Operator::Scan("lineitem_json", "l");
    ExprPtr pred =
        Expr::Bin(BinOp::kEq, Proj("o", "o_comment"), Proj("l", "l_comment"));
    OpPtr join = Operator::Join(scan_o, scan_l, pred, /*outer=*/false);
    OpPtr nest = Operator::Nest(join, Proj("l", "l_linenumber"), "ln",
                                {{Monoid::kBag, Proj("l", "l_quantity"), "qs"}},
                                nullptr, "g");
    return Operator::Reduce(nest, {{Monoid::kCount, nullptr, "n"}});
  };
  RunInfo jit = RunPlanConfig(make_plan, ExecMode::kJIT, 2);
  ASSERT_TRUE(jit.status.ok()) << jit.status.ToString();
  EXPECT_FALSE(jit.telemetry.used_jit);
  EXPECT_NE(jit.telemetry.fallback_reason.find("non-integer join key"), std::string::npos)
      << jit.telemetry.fallback_reason;
  EXPECT_NE(jit.telemetry.fallback_reason.find("collection/boolean monoid"),
            std::string::npos)
      << jit.telemetry.fallback_reason;
  EXPECT_NE(jit.telemetry.fallback_reason.find("; "), std::string::npos)
      << "reasons must be semicolon-joined: " << jit.telemetry.fallback_reason;
}

}  // namespace
}  // namespace proteus
