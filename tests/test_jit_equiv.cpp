// Property suite: the generated engine must agree with the Volcano
// interpreter on every query the JIT accepts — across formats, query shapes,
// and selectivities (parameterized sweep), plus randomized predicates.
#include <gtest/gtest.h>

#include <random>

#include "tests/engine_test_util.h"

namespace proteus {
namespace {

struct EquivCase {
  std::string name;
  std::string query;
};

class JitEquivTest : public ::testing::TestWithParam<EquivCase> {};

QueryResult RunMode(const std::string& q, ExecMode mode, bool* used_jit) {
  EngineOptions opts;
  opts.mode = mode;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  auto r = engine.Execute(q);
  EXPECT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
  if (used_jit != nullptr) *used_jit = engine.telemetry().used_jit;
  return r.ok() ? *r : QueryResult{};
}

TEST_P(JitEquivTest, JitMatchesInterpreter) {
  const EquivCase& c = GetParam();
  bool used_jit = false;
  QueryResult jit = RunMode(c.query, ExecMode::kJIT, &used_jit);
  QueryResult interp = RunMode(c.query, ExecMode::kInterp, nullptr);
  EXPECT_TRUE(used_jit) << "query unexpectedly fell back: " << c.query;
  EXPECT_TRUE(jit.EqualsUnordered(interp, 1e-6))
      << c.query << "\nJIT:\n"
      << jit.ToString() << "\nInterp:\n"
      << interp.ToString();
}

std::vector<EquivCase> SweepCases() {
  std::vector<EquivCase> cases;
  // Selectivity sweep (the paper's 10/20/50/100%) x format x template.
  for (int sel : {6, 12, 30, 60}) {  // of 60 orders
    for (const char* ds : {"lineitem_bincol", "lineitem_binrow", "lineitem_csv",
                           "lineitem_json", "lineitem_json_shuffled"}) {
      std::string s = std::to_string(sel);
      cases.push_back({std::string(ds) + "_count_" + s,
                       "SELECT count(*) FROM " + std::string(ds) + " WHERE l_orderkey < " + s});
      cases.push_back({std::string(ds) + "_agg4_" + s,
                       "SELECT count(*), max(l_quantity), sum(l_tax), min(l_discount) FROM " +
                           std::string(ds) + " WHERE l_orderkey < " + s});
      cases.push_back(
          {std::string(ds) + "_preds_" + s,
           "SELECT count(*) FROM " + std::string(ds) + " WHERE l_orderkey < " + s +
               " and l_quantity < 40.0 and l_discount < 0.08 and l_tax < 0.06"});
      cases.push_back({std::string(ds) + "_group_" + s,
                       "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM " +
                           std::string(ds) + " WHERE l_orderkey < " + s +
                           " GROUP BY l_linenumber"});
    }
    std::string s = std::to_string(sel);
    cases.push_back({"join_bincol_" + s,
                     "SELECT count(*), max(o.o_totalprice) FROM orders_bincol o JOIN "
                     "lineitem_bincol l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < " +
                         s});
    cases.push_back({"join_json_" + s,
                     "SELECT count(*), max(o.o_totalprice) FROM orders_json o JOIN "
                     "lineitem_json l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < " +
                         s});
    cases.push_back({"unnest_" + s,
                     "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l WHERE "
                     "l.l_orderkey < " +
                         s});
  }
  // Strings, projections, comprehension syntax.
  cases.push_back({"str_eq_csv",
                   "SELECT count(*) FROM lineitem_csv WHERE l_shipmode = 'RAIL'"});
  cases.push_back({"str_eq_json",
                   "SELECT count(*) FROM lineitem_json WHERE l_shipmode = 'SHIP'"});
  cases.push_back({"str_group",
                   "SELECT l_shipmode, count(*), max(l_quantity) FROM lineitem_bincol "
                   "GROUP BY l_shipmode"});
  cases.push_back({"projection_rows",
                   "SELECT o_orderkey, o_totalprice FROM orders_bincol WHERE o_orderkey < 17"});
  cases.push_back({"comp_record_yield",
                   "for { s <- spam, s.body_len > 3000 } "
                   "yield bag <id: s.mail_id, n: s.body_len>"});
  cases.push_back({"comp_nested_path",
                   "for { s <- spam, s.origin.country = 'RU' } yield count"});
  cases.push_back({"comp_unnest_elem",
                   "for { s <- spam, k <- s.classes, k.label > 10 } yield (count, max k.label)"});
  cases.push_back({"arith_expr",
                   "SELECT sum(l_extendedprice * (1.0 - l_discount) * (1.0 + l_tax)) "
                   "FROM lineitem_bincol WHERE l_orderkey < 30"});
  cases.push_back({"three_way_join",
                   "SELECT count(*) FROM lineitem_bincol l JOIN orders_bincol o ON "
                   "l.l_orderkey = o.o_orderkey JOIN orders_json oj ON "
                   "o.o_orderkey = oj.o_orderkey WHERE l.l_orderkey < 21"});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, JitEquivTest, ::testing::ValuesIn(SweepCases()),
                         [](const auto& info) { return info.param.name; });

// Randomized predicates: conjunctions of range predicates over numeric
// lineitem columns with random thresholds must agree in both engines.
TEST(JitEquivRandom, RandomRangePredicates) {
  std::mt19937_64 rng(2016);
  std::uniform_int_distribution<int> key(0, 60);
  std::uniform_real_distribution<double> qty(1, 50), disc(0, 0.1), tax(0, 0.08);
  const char* datasets[] = {"lineitem_bincol", "lineitem_csv", "lineitem_json"};
  for (int trial = 0; trial < 12; ++trial) {
    std::ostringstream q;
    q.precision(6);
    q << "SELECT count(*), sum(l_quantity) FROM " << datasets[trial % 3] << " WHERE ";
    q << "l_orderkey < " << key(rng);
    if (trial % 2 == 0) q << " and l_quantity < " << qty(rng);
    if (trial % 3 == 0) q << " and l_discount < " << disc(rng);
    if (trial % 4 == 0) q << " and l_tax >= " << tax(rng);
    bool used_jit = false;
    QueryResult a = RunMode(q.str(), ExecMode::kJIT, &used_jit);
    QueryResult b = RunMode(q.str(), ExecMode::kInterp, nullptr);
    EXPECT_TRUE(used_jit);
    EXPECT_TRUE(a.EqualsUnordered(b, 1e-6)) << q.str();
  }
}

// Caching must not change results: run the same query twice with caching on
// (second run reads from cache) and compare to the uncached interpreter.
TEST(JitEquivRandom, CachedRunsMatchUncached) {
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.cache_policy.enabled = true;
  QueryEngine cached(opts);
  testutil::RegisterAll(&cached);

  std::string q =
      "SELECT count(*), max(l_quantity) FROM lineitem_json WHERE l_orderkey < 30";
  auto first = cached.Execute(q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cached.Execute(q);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(cached.telemetry().used_cache);

  QueryResult oracle = RunMode(q, ExecMode::kInterp, nullptr);
  EXPECT_TRUE(first->EqualsUnordered(oracle, 1e-6));
  EXPECT_TRUE(second->EqualsUnordered(oracle, 1e-6));
}

}  // namespace
}  // namespace proteus
