// End-to-end tests: full pipeline (parse -> calculus -> algebra -> optimize
// -> execute) against brute-force oracles computed from the generator's
// in-memory tables. Both execution modes are covered here; the dedicated
// JIT-vs-interpreter property sweep lives in test_jit_equiv.cpp.
#include <gtest/gtest.h>

#include "tests/engine_test_util.h"

namespace proteus {
namespace {

using testutil::Corpus;

class EngineTest : public ::testing::TestWithParam<ExecMode> {
 protected:
  void SetUp() override {
    EngineOptions opts;
    opts.mode = GetParam();
    engine_ = std::make_unique<QueryEngine>(opts);
    testutil::RegisterAll(engine_.get());
  }

  QueryResult MustRun(const std::string& q) {
    auto r = engine_->Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<QueryEngine> engine_;
};

TEST_P(EngineTest, CountWithPredicate) {
  const Corpus& c = Corpus::Get();
  int64_t expected = 0;
  for (const auto& row : c.lineitem.rows()) {
    if (row[0].i() < 20) ++expected;
  }
  for (const char* ds : {"lineitem_bincol", "lineitem_binrow", "lineitem_csv",
                         "lineitem_json", "lineitem_json_shuffled"}) {
    auto r = MustRun(std::string("SELECT count(*) FROM ") + ds + " WHERE l_orderkey < 20");
    EXPECT_EQ(r.scalar().i(), expected) << ds;
  }
}

TEST_P(EngineTest, MultiAggregate) {
  const Corpus& c = Corpus::Get();
  int64_t cnt = 0;
  double maxq = -1, sumt = 0;
  for (const auto& row : c.lineitem.rows()) {
    if (row[0].i() < 30) {
      ++cnt;
      maxq = std::max(maxq, row[2].f());
      sumt += row[5].f();
    }
  }
  auto r = MustRun(
      "SELECT count(*), max(l_quantity), sum(l_tax) FROM lineitem_json "
      "WHERE l_orderkey < 30");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].i(), cnt);
  EXPECT_NEAR(r.rows[0][1].AsFloat(), maxq, 1e-9);
  EXPECT_NEAR(r.rows[0][2].AsFloat(), sumt, 1e-6);
}

TEST_P(EngineTest, MinAggregateAndArithmeticExpr) {
  const Corpus& c = Corpus::Get();
  double expected = 1e300;
  for (const auto& row : c.lineitem.rows()) {
    expected = std::min(expected, row[3].f() * (1.0 - row[4].f()));
  }
  auto r = MustRun(
      "SELECT min(l_extendedprice * (1.0 - l_discount)) FROM lineitem_bincol");
  EXPECT_NEAR(r.scalar().AsFloat(), expected, 1e-6);
}

TEST_P(EngineTest, JoinCountMatchesOracle) {
  const Corpus& c = Corpus::Get();
  // PK-FK join: count lineitems whose order exists (all) with a filter.
  int64_t expected = 0;
  for (const auto& row : c.lineitem.rows()) {
    if (row[0].i() < 25) ++expected;  // every key matches exactly one order
  }
  auto r = MustRun(
      "SELECT count(*) FROM orders_bincol o JOIN lineitem_bincol l "
      "ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 25");
  EXPECT_EQ(r.scalar().i(), expected);
}

TEST_P(EngineTest, JoinAggregateOverPayload) {
  const Corpus& c = Corpus::Get();
  std::unordered_map<int64_t, double> totalprice;
  for (const auto& row : c.orders.rows()) totalprice[row[0].i()] = row[2].f();
  double expected = 0;
  int64_t cnt = 0;
  for (const auto& row : c.lineitem.rows()) {
    if (row[0].i() < 40) {
      expected = std::max(expected, totalprice[row[0].i()]);
      ++cnt;
    }
  }
  auto r = MustRun(
      "SELECT count(*), max(o.o_totalprice) FROM orders_json o JOIN lineitem_json l "
      "ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 40");
  EXPECT_EQ(r.rows[0][0].i(), cnt);
  EXPECT_NEAR(r.rows[0][1].AsFloat(), expected, 1e-9);
}

TEST_P(EngineTest, UnnestOverDenormalizedJson) {
  const Corpus& c = Corpus::Get();
  int64_t expected = 0;
  for (const auto& row : c.denorm.rows()) {
    for (const auto& l : row[3].list()) {
      if (l.GetField("l_quantity")->f() > 25.0) ++expected;
    }
  }
  auto r = MustRun(
      "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l "
      "WHERE l.l_quantity > 25.0");
  EXPECT_EQ(r.scalar().i(), expected);
}

TEST_P(EngineTest, GroupByMatchesOracle) {
  const Corpus& c = Corpus::Get();
  std::map<int64_t, std::pair<int64_t, double>> expected;  // line# -> (count, sum price)
  for (const auto& row : c.lineitem.rows()) {
    if (row[0].i() >= 30) continue;
    auto& e = expected[row[1].i()];
    e.first++;
    e.second += row[3].f();
  }
  auto r = MustRun(
      "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_bincol "
      "WHERE l_orderkey < 30 GROUP BY l_linenumber");
  ASSERT_EQ(r.rows.size(), expected.size());
  for (const auto& row : r.rows) {
    auto it = expected.find(row[0].i());
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(row[1].i(), it->second.first);
    EXPECT_NEAR(row[2].AsFloat(), it->second.second, 1e-6);
  }
}

TEST_P(EngineTest, ProjectionQueryReturnsRows) {
  const Corpus& c = Corpus::Get();
  size_t expected = 0;
  for (const auto& row : c.orders.rows()) {
    if (row[0].i() < 10) ++expected;
  }
  auto r = MustRun(
      "SELECT o_orderkey, o_totalprice FROM orders_csv WHERE o_orderkey < 10");
  EXPECT_EQ(r.rows.size(), expected);
  ASSERT_EQ(r.columns.size(), 2u);
  EXPECT_EQ(r.columns[0], "o_orderkey");
}

TEST_P(EngineTest, ComprehensionWithNestedPathAndRecordYield) {
  const Corpus& c = Corpus::Get();
  int64_t expected = 0;
  for (const auto& row : c.spam.rows()) {
    if (row[6].GetField("country")->s() == "US") ++expected;
  }
  auto r = MustRun(
      "for { s <- spam, s.origin.country = 'US' } "
      "yield bag <id: s.mail_id, c: s.origin.country>");
  EXPECT_EQ(static_cast<int64_t>(r.rows.size()), expected);
}

TEST_P(EngineTest, ComprehensionUnnestWithElementPredicate) {
  const Corpus& c = Corpus::Get();
  int64_t expected = 0;
  for (const auto& row : c.spam.rows()) {
    for (const auto& cls : row[7].list()) {
      if (cls.GetField("label")->i() > 20) ++expected;
    }
  }
  auto r = MustRun(
      "for { s <- spam, k <- s.classes, k.label > 20 } yield count");
  EXPECT_EQ(r.scalar().i(), expected);
}

TEST_P(EngineTest, StringPredicates) {
  const Corpus& c = Corpus::Get();
  int64_t expected = 0;
  for (const auto& row : c.lineitem.rows()) {
    if (row[6].s() == "AIR") ++expected;
  }
  auto r = MustRun("SELECT count(*) FROM lineitem_csv WHERE l_shipmode = 'AIR'");
  EXPECT_EQ(r.scalar().i(), expected);
  auto r2 = MustRun("SELECT count(*) FROM lineitem_json WHERE l_shipmode = 'AIR'");
  EXPECT_EQ(r2.scalar().i(), expected);
}

TEST_P(EngineTest, GroupByStringKey) {
  const Corpus& c = Corpus::Get();
  std::map<std::string, int64_t> expected;
  for (const auto& row : c.lineitem.rows()) expected[row[6].s()]++;
  auto r = MustRun("SELECT l_shipmode, count(*) FROM lineitem_bincol GROUP BY l_shipmode");
  ASSERT_EQ(r.rows.size(), expected.size());
  for (const auto& row : r.rows) {
    EXPECT_EQ(row[1].i(), expected.at(row[0].s()));
  }
}

TEST_P(EngineTest, ThreeWayJoin) {
  // lineitem x orders (bincol) x orders_json: keys all line up on orderkey.
  const Corpus& c = Corpus::Get();
  int64_t expected = 0;
  for (const auto& row : c.lineitem.rows()) {
    if (row[0].i() < 15) ++expected;
  }
  auto r = MustRun(
      "SELECT count(*) FROM lineitem_bincol l "
      "JOIN orders_bincol o ON l.l_orderkey = o.o_orderkey "
      "JOIN orders_json oj ON o.o_orderkey = oj.o_orderkey "
      "WHERE l.l_orderkey < 15");
  EXPECT_EQ(r.scalar().i(), expected);
}

TEST_P(EngineTest, EmptyResultSelections) {
  auto r = MustRun("SELECT count(*) FROM lineitem_bincol WHERE l_orderkey < 0");
  EXPECT_EQ(r.scalar().i(), 0);
  auto r2 = MustRun("SELECT max(l_quantity) FROM lineitem_bincol WHERE l_orderkey < 0");
  // Max over empty input: null (interp) or the monoid zero (jit); both rows exist.
  ASSERT_EQ(r2.rows.size(), 1u);
}

TEST_P(EngineTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(engine_->Execute("SELECT count(*) FROM nope").ok());
  EXPECT_FALSE(engine_->Execute("SELECT bogus FROM lineitem_bincol").ok());
  EXPECT_FALSE(engine_->Execute("garbage query").ok());
}

TEST_P(EngineTest, TelemetryReportsEngineChoice) {
  MustRun("SELECT count(*) FROM lineitem_bincol WHERE l_orderkey < 20");
  const QueryTelemetry& t = engine_->telemetry();
  if (GetParam() == ExecMode::kJIT) {
    EXPECT_TRUE(t.used_jit) << t.fallback_reason;
    EXPECT_GT(t.compile_ms, 0.0);
    EXPECT_FALSE(engine_->last_ir().empty());
  } else {
    EXPECT_FALSE(t.used_jit);
  }
  EXPECT_FALSE(t.plan.empty());
}

INSTANTIATE_TEST_SUITE_P(Modes, EngineTest,
                         ::testing::Values(ExecMode::kJIT, ExecMode::kInterp),
                         [](const auto& info) {
                           return info.param == ExecMode::kJIT ? "JIT" : "Interp";
                         });

}  // namespace
}  // namespace proteus
