// Morsel-driven parallel execution tests.
//
// The core contract: query results are *identical* — not just equal as
// multisets, but cell-for-cell identical including float bits and row order
// — for every worker count. Morsel boundaries, radix-build layout, and
// partial-aggregate merge order depend only on the data, so num_threads is
// purely a performance knob. The suite drives projections, selections,
// joins, group-bys, and unnests through num_threads ∈ {1, 2, 8}, plus unit
// coverage for the TaskScheduler, Aggregator::Merge, and the plug-in
// Split() API.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "src/common/task_scheduler.h"
#include "src/engine/aggregator.h"
#include "tests/engine_test_util.h"

namespace proteus {
namespace {

// Small morsels so the ~240-row test corpus still splits into many ranges.
constexpr uint64_t kTestMorselRows = 16;

std::unique_ptr<QueryEngine> MakeEngine(int num_threads) {
  EngineOptions opts;
  opts.mode = ExecMode::kInterp;
  opts.num_threads = num_threads;
  opts.morsel_rows = kTestMorselRows;
  auto engine = std::make_unique<QueryEngine>(opts);
  testutil::RegisterAll(engine.get());
  return engine;
}

/// Cell-for-cell equality: same columns, same row order, exact values
/// (float bits included — Value::Equals compares doubles exactly).
void ExpectIdentical(const QueryResult& a, const QueryResult& b, const std::string& ctx) {
  ASSERT_EQ(a.columns, b.columns) << ctx;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << ctx;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << ctx << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_TRUE(a.rows[r][c].Equals(b.rows[r][c]))
          << ctx << " row " << r << " col " << c << ": " << a.rows[r][c].ToString()
          << " vs " << b.rows[r][c].ToString();
    }
  }
}

const std::vector<std::string>& Workload() {
  static const std::vector<std::string> queries = {
      // Projections (collection monoid: row order must also be stable).
      "SELECT l_orderkey, l_quantity FROM lineitem_json WHERE l_orderkey < 1000000",
      "SELECT l_orderkey, l_extendedprice FROM lineitem_bincol WHERE l_orderkey < 1000000",
      // Selections + aggregates over every format family.
      "SELECT count(*), max(l_quantity), sum(l_tax) FROM lineitem_json WHERE l_orderkey < 30",
      "SELECT count(*), sum(l_extendedprice) FROM lineitem_csv WHERE l_orderkey < 40",
      "SELECT min(l_extendedprice * (1.0 - l_discount)) FROM lineitem_bincol",
      "SELECT sum(l_extendedprice) FROM lineitem_binrow WHERE l_linenumber = 2",
      // Joins (shared radix build, morsel-parallel probe).
      "SELECT count(*) FROM orders_bincol o JOIN lineitem_bincol l "
      "ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 25",
      "SELECT count(*), max(o.o_totalprice) FROM orders_json o JOIN lineitem_json l "
      "ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 40",
      // Group-bys (per-morsel partial groups merged in morsel order).
      "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_bincol "
      "WHERE l_orderkey < 30 GROUP BY l_linenumber",
      "SELECT l_linenumber, count(*), max(l_quantity) FROM lineitem_json "
      "GROUP BY l_linenumber",
      // Unnest over nested JSON collections.
      "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l "
      "WHERE l.l_quantity > 25.0",
  };
  return queries;
}

TEST(ParallelExecution, ResultsIdenticalAcrossThreadCounts) {
  auto baseline_engine = MakeEngine(1);
  for (const auto& q : Workload()) {
    auto baseline = baseline_engine->Execute(q);
    ASSERT_TRUE(baseline.ok()) << q << "\n" << baseline.status().ToString();
    for (int threads : {2, 8}) {
      auto engine = MakeEngine(threads);
      auto r = engine->Execute(q);
      ASSERT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
      ExpectIdentical(*baseline, *r, q + " @ " + std::to_string(threads) + " threads");
    }
  }
}

TEST(ParallelExecution, ParallelMatchesJitOracle) {
  // Cross-engine sanity: the 8-worker morsel path agrees (as a multiset,
  // with float tolerance) with the default single-threaded JIT engine.
  EngineOptions jit_opts;
  QueryEngine jit(jit_opts);
  testutil::RegisterAll(&jit);
  auto parallel = MakeEngine(8);
  for (const auto& q : Workload()) {
    auto a = jit.Execute(q);
    auto b = parallel->Execute(q);
    ASSERT_TRUE(a.ok()) << q << "\n" << a.status().ToString();
    ASSERT_TRUE(b.ok()) << q << "\n" << b.status().ToString();
    EXPECT_TRUE(a->EqualsUnordered(*b, 1e-6)) << q << "\njit:\n"
                                              << a->ToString() << "\nparallel:\n"
                                              << b->ToString();
  }
}

TEST(ParallelExecution, TelemetryReportsThreadsAndMorsels) {
  auto engine = MakeEngine(4);
  auto r = engine->Execute("SELECT count(*) FROM lineitem_json WHERE l_orderkey < 1000000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryTelemetry& t = engine->telemetry();
  EXPECT_FALSE(t.used_jit);
  EXPECT_GT(t.morsels, 1u) << "corpus should split into multiple morsels";
  EXPECT_GE(t.threads_used, 1);
  EXPECT_LE(t.threads_used, 4);
}

TEST(ParallelExecution, JitModeRoutesOnlyEligiblePlansToWorkers) {
  // mode=kJIT with workers: morsel-eligible queries run the *parallel JIT*
  // pipelines (no more silent interpreter fallback); plans the morsel driver
  // declines (a Nest mid-chain) keep their normal JIT-first path instead of
  // silently landing on the serial interpreter.
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.num_threads = 8;
  opts.morsel_rows = kTestMorselRows;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);

  auto r = engine.Execute("SELECT count(*) FROM lineitem_json WHERE l_orderkey < 30");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(engine.telemetry().used_jit);
  EXPECT_TRUE(engine.telemetry().jit_parallel);
  EXPECT_GT(engine.telemetry().morsels, 0u);

  // Nest-of-Nest: the inner Nest sits mid-chain under the outer one, which
  // the morsel driver does not accept.
  OpPtr scan_l = Operator::Scan("lineitem_json", "l");
  OpPtr inner = Operator::Nest(scan_l, Expr::Proj(Expr::Var("l"), "l_linenumber"), "ln",
                               {{Monoid::kSum, Expr::Proj(Expr::Var("l"), "l_quantity"), "q"}},
                               nullptr, "g");
  OpPtr outer_nest =
      Operator::Nest(inner, Expr::Proj(Expr::Var("g"), "ln"), "ln2",
                     {{Monoid::kCount, nullptr, "c"}}, nullptr, "h");
  auto nested =
      engine.ExecutePlan(Operator::Reduce(outer_nest, {{Monoid::kCount, nullptr, "n"}}));
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_EQ(engine.telemetry().morsels, 0u);
  // The JIT was at least attempted: any fallback reason is the JIT's own,
  // not the parallel-routing one.
  EXPECT_EQ(engine.telemetry().fallback_reason.find("num_threads"), std::string::npos)
      << engine.telemetry().fallback_reason;
}

TEST(ParallelExecution, JitPathStaysSingleThreadedAndCorrect) {
  // At num_threads == 1 the parallel JIT drives its morsel frame on the one
  // calling thread: correct, and telemetry reports a single worker.
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  auto r = engine.Execute("SELECT count(*) FROM lineitem_json WHERE l_orderkey < 30");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine.telemetry().threads_used, 1);
}

TEST(ParallelExecution, OuterJoinRunsMorselParallelAndMatches) {
  // Outer joins run morsel-parallel (the lifted ROADMAP serial fallback):
  // per-morsel matched-build bitmaps are OR-merged, then the unmatched
  // build rows drain once. The SQL frontend does not expose outer joins;
  // build the plan directly. Results must be identical for every worker
  // count, including the unmatched rows' position in the output.
  auto make_plan = [](bool project) {
    OpPtr scan_o = Operator::Scan("orders_json", "o");
    OpPtr scan_l = Operator::Scan("lineitem_json", "l");
    ExprPtr pred = Expr::Bin(BinOp::kEq, Expr::Proj(Expr::Var("o"), "o_orderkey"),
                             Expr::Proj(Expr::Var("l"), "l_orderkey"));
    OpPtr join = Operator::Join(scan_o, scan_l, pred, /*outer=*/true);
    if (project) {
      // Bag projection: row order (probe stream, then unmatched drain) is
      // observable and must not depend on the worker count.
      ExprPtr rec = Expr::Record({"key", "qty"}, {Expr::Proj(Expr::Var("o"), "o_orderkey"),
                                                  Expr::Proj(Expr::Var("l"), "l_quantity")});
      return Operator::Reduce(join, {{Monoid::kBag, rec, "rows"}});
    }
    return Operator::Reduce(join, {{Monoid::kCount, nullptr, "n"}});
  };
  for (bool project : {false, true}) {
    auto a = MakeEngine(1)->ExecutePlan(make_plan(project));
    auto b8 = MakeEngine(8);
    auto b = b8->ExecutePlan(make_plan(project));
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectIdentical(*a, *b, project ? "outer join rows" : "outer join count");
    EXPECT_GT(b8->telemetry().morsels, 0u) << "outer joins run morsel-parallel now";
  }
}

TEST(ParallelExecution, HardwareConcurrencyResolvesInTelemetry) {
  // num_threads = 0 asks for hardware concurrency; the engine must resolve
  // it at construction and report the actual worker count — not the raw 0 —
  // in options() and QueryTelemetry::threads_used.
  EngineOptions opts;
  opts.mode = ExecMode::kInterp;
  opts.num_threads = 0;
  opts.morsel_rows = kTestMorselRows;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);

  const int resolved = engine.scheduler().num_threads();
  EXPECT_GE(resolved, 1);
  EXPECT_EQ(engine.options().num_threads, resolved);

  auto r = engine.Execute("SELECT count(*) FROM lineitem_json WHERE l_orderkey < 1000000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryTelemetry& t = engine.telemetry();
  EXPECT_GT(t.morsels, 0u);
  EXPECT_EQ(t.threads_used,
            static_cast<int>(std::min<uint64_t>(static_cast<uint64_t>(resolved), t.morsels)));
}

// ---------------------------------------------------------------------------
// TaskScheduler
// ---------------------------------------------------------------------------

TEST(TaskScheduler, RunsEveryTaskExactlyOnce) {
  TaskScheduler sched(4);
  constexpr uint64_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  ASSERT_TRUE(sched
                  .ParallelFor(kTasks,
                               [&](uint64_t t, int) {
                                 hits[t].fetch_add(1);
                                 return Status::OK();
                               })
                  .ok());
  for (uint64_t t = 0; t < kTasks; ++t) EXPECT_EQ(hits[t].load(), 1) << t;
}

TEST(TaskScheduler, ReportsLowestFailingTask) {
  TaskScheduler sched(4);
  for (int round = 0; round < 5; ++round) {
    Status s = sched.ParallelFor(100, [&](uint64_t t, int) -> Status {
      if (t == 13 || t == 77) {
        return Status::Internal("task " + std::to_string(t) + " failed");
      }
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    // 13 always runs (cancellation is best-effort, but 13 < 77 and errors
    // report the lowest failing index that actually ran).
    EXPECT_NE(s.message().find("failed"), std::string::npos);
  }
}

TEST(TaskScheduler, NestedCallsRunInline) {
  TaskScheduler sched(2);
  std::atomic<int> total{0};
  ASSERT_TRUE(sched
                  .ParallelFor(8,
                               [&](uint64_t, int) {
                                 return sched.ParallelFor(8, [&](uint64_t, int) {
                                   total.fetch_add(1);
                                   return Status::OK();
                                 });
                               })
                  .ok());
  EXPECT_EQ(total.load(), 64);
}

TEST(TaskScheduler, FoldsWorkerCountersIntoCaller) {
  TaskScheduler sched(4);
  GlobalCounters().Reset();
  ASSERT_TRUE(sched
                  .ParallelFor(64,
                               [&](uint64_t, int) {
                                 GlobalCounters().tuples_scanned += 10;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(GlobalCounters().tuples_scanned, 640u);
}

// ---------------------------------------------------------------------------
// Aggregator::Merge
// ---------------------------------------------------------------------------

TEST(AggregatorMerge, NumericMonoids) {
  Aggregator a(Monoid::kSum), b(Monoid::kSum);
  a.Add(Value::Int(3));
  b.Add(Value::Int(4));
  a.Merge(b);
  EXPECT_EQ(a.Final().i(), 7);

  Aggregator fa(Monoid::kSum), fb(Monoid::kSum);
  fa.Add(Value::Int(1));
  fb.Add(Value::Float(2.5));
  fa.Merge(fb);
  EXPECT_DOUBLE_EQ(fa.Final().f(), 3.5);

  Aggregator mx(Monoid::kMax), my(Monoid::kMax);
  mx.Add(Value::Int(5));
  my.Add(Value::Int(9));
  mx.Merge(my);
  EXPECT_EQ(mx.Final().i(), 9);

  Aggregator empty(Monoid::kMin), some(Monoid::kMin);
  some.Add(Value::Int(-2));
  empty.Merge(some);
  EXPECT_EQ(empty.Final().i(), -2);

  Aggregator c1(Monoid::kCount), c2(Monoid::kCount);
  c1.Add(Value::Int(1));
  c1.Add(Value::Int(1));
  c2.Add(Value::Int(1));
  c1.Merge(c2);
  EXPECT_EQ(c1.Final().i(), 3);
}

TEST(AggregatorMerge, CollectionMonoidsKeepMorselOrder) {
  Aggregator l1(Monoid::kList), l2(Monoid::kList);
  l1.Add(Value::Int(1));
  l1.Add(Value::Int(2));
  l2.Add(Value::Int(3));
  l1.Merge(l2);
  Value merged_list = l1.Final();
  const ValueList& items = merged_list.list();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].i(), 1);
  EXPECT_EQ(items[1].i(), 2);
  EXPECT_EQ(items[2].i(), 3);

  Aggregator s1(Monoid::kSet), s2(Monoid::kSet);
  s1.Add(Value::Int(1));
  s2.Add(Value::Int(1));
  s2.Add(Value::Int(2));
  s1.Merge(s2);
  Value merged_set = s1.Final();
  const ValueList& set = merged_set.list();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0].i(), 1);
  EXPECT_EQ(set[1].i(), 2);
}

// ---------------------------------------------------------------------------
// Plug-in Split() API
// ---------------------------------------------------------------------------

class SplitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = MakeEngine(1);
  }

  InputPlugin* MustOpen(const std::string& dataset) {
    auto info = engine_->catalog().Get(dataset);
    EXPECT_TRUE(info.ok());
    auto plugin = engine_->plugins().GetOrOpen(**info, nullptr);
    EXPECT_TRUE(plugin.ok());
    return *plugin;
  }

  std::unique_ptr<QueryEngine> engine_;
};

void ExpectCoversAllRecords(const std::vector<ScanRange>& ranges, uint64_t n,
                            uint64_t max_morsels) {
  ASSERT_FALSE(ranges.empty());
  EXPECT_LE(ranges.size(), max_morsels);
  uint64_t expect_begin = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, expect_begin) << "ranges must be contiguous";
    EXPECT_LE(r.begin, r.end);
    expect_begin = r.end;
  }
  EXPECT_EQ(ranges.back().end, n) << "ranges must cover every record";
}

TEST_F(SplitTest, AllPluginsCoverAllRecordsContiguously) {
  for (const char* ds : {"lineitem_json", "lineitem_csv", "lineitem_bincol",
                         "lineitem_binrow", "orders_json", "spam"}) {
    InputPlugin* p = MustOpen(ds);
    ASSERT_NE(p, nullptr) << ds;
    for (uint64_t m : {1, 3, 7, 1000000}) {
      ExpectCoversAllRecords(p->Split(m), p->NumRecords(), std::max<uint64_t>(m, 1));
    }
  }
}

TEST_F(SplitTest, JsonSplitBalancesBytes) {
  InputPlugin* p = MustOpen("lineitem_json");
  ASSERT_NE(p, nullptr);
  auto ranges = p->Split(4);
  ASSERT_GT(ranges.size(), 1u);
  // Every morsel holds a similar number of records for this fairly uniform
  // corpus; mostly this asserts byte balancing did not degenerate.
  uint64_t min_size = UINT64_MAX, max_size = 0;
  for (const auto& r : ranges) {
    min_size = std::min(min_size, r.size());
    max_size = std::max(max_size, r.size());
  }
  EXPECT_GT(min_size, 0u);
  EXPECT_LE(max_size, 2 * min_size + 16);
}

// The reentrancy contract: 8 threads hammer ONE engine with mixed plans and
// every caller gets (a) exactly the rows a serial run produces and (b)
// telemetry attributed to its own query. The attribution check is a
// conservation law: per-query tasks_dealt / steals from CallOptions, summed
// over every query, must equal the shared scheduler's lifetime totals —
// which the old read-then-reset delta could never satisfy (concurrent
// queries double- and cross-counted each other's work). Run under TSan in
// CI, this is also the data-race regression test for the shared engine.
TEST(ConcurrentEngine, EightCallersShareOneEngineWithExactAttribution) {
  auto baseline_engine = MakeEngine(1);
  std::vector<QueryResult> baselines;
  for (const auto& q : Workload()) {
    auto r = baseline_engine->Execute(q);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    baselines.push_back(std::move(*r));
  }

  auto engine = MakeEngine(4);
  constexpr int kCallers = 8;
  constexpr int kRounds = 2;
  std::atomic<uint64_t> sum_dealt{0};
  std::atomic<uint64_t> sum_steals{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < Workload().size(); ++q) {
          const size_t idx = (q + c) % Workload().size();
          QueryTelemetry tel;
          CallOptions call;
          call.telemetry = &tel;
          auto r = engine->Execute(Workload()[idx], call);
          ASSERT_TRUE(r.ok()) << Workload()[idx] << ": " << r.status().ToString();
          ExpectIdentical(baselines[idx], *r,
                          "caller " + std::to_string(c) + " query " +
                              std::to_string(idx));
          sum_dealt.fetch_add(tel.tasks_dealt, std::memory_order_relaxed);
          sum_steals.fetch_add(tel.steals, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : callers) t.join();

  // Conservation: every dealt task and every steal of the engine's lifetime
  // belongs to exactly one query.
  EXPECT_EQ(sum_dealt.load(), engine->scheduler().total_dealt());
  EXPECT_EQ(sum_steals.load(), engine->scheduler().total_steals());
}

// Concurrent ParallelFor callers on one scheduler: every batch completes,
// every caller sees only its own error, and pool workers interleave across
// batches without dropping or double-running tasks.
TEST(TaskScheduler, ConcurrentBatchesRunEveryTaskExactlyOnce) {
  TaskScheduler sched(4);
  constexpr int kCallers = 6;
  constexpr uint64_t kTasks = 200;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& v : hits) {
    std::vector<std::atomic<int>> init(kTasks);
    v.swap(init);
  }
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      TaskScheduler::BatchStats stats;
      Status s;
      {
        TaskScheduler::StatsScope scope(&stats);
        s = sched.ParallelFor(kTasks, [&](uint64_t t, int) {
          hits[c][t].fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        });
      }
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(stats.dealt, kTasks);
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (uint64_t t = 0; t < kTasks; ++t) {
      ASSERT_EQ(hits[c][t].load(), 1) << "caller " << c << " task " << t;
    }
  }
}

TEST_F(SplitTest, SplitIsDeterministic) {
  InputPlugin* p = MustOpen("lineitem_json");
  ASSERT_NE(p, nullptr);
  auto a = p->Split(7);
  auto b = p->Split(7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

}  // namespace
}  // namespace proteus
