// Unit tests for the common substrate: Status/Result, Arena, MmapFile,
// hashing, Value semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/common/arena.h"
#include "src/common/hash.h"
#include "src/common/mmap_file.h"
#include "src/common/status.h"
#include "src/common/value.h"

namespace proteus {
namespace {

TEST(Status, OkAndError) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
}

TEST(Result, ValueAndError) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  Result<int> e = Status::NotFound("x");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(e.ValueOr(7), 7);
}

Result<int> Doubler(Result<int> in) {
  PROTEUS_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

TEST(Arena, AllocatesAlignedMemory) {
  Arena arena(128);
  void* a = arena.Allocate(10, 8);
  void* b = arena.Allocate(10, 8);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
}

TEST(Arena, GrowsBeyondBlockSize) {
  Arena arena(64);
  // Allocation larger than the block size must still succeed.
  void* big = arena.Allocate(1024);
  ASSERT_NE(big, nullptr);
  memset(big, 0xAB, 1024);
  EXPECT_GE(arena.bytes_allocated(), 1024u);
}

TEST(Arena, ResetReleases) {
  Arena arena;
  arena.Allocate(100);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

TEST(Arena, ArrayHelper) {
  Arena arena;
  int64_t* xs = arena.AllocateArray<int64_t>(16);
  for (int i = 0; i < 16; ++i) xs[i] = i;
  EXPECT_EQ(xs[15], 15);
}

TEST(MmapFile, MapsFileContents) {
  std::string path = testing::TempDir() + "/mmap_test.txt";
  {
    std::ofstream f(path);
    f << "hello proteus";
  }
  auto r = MmapFile::Open(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->view(), "hello proteus");
  std::remove(path.c_str());
}

TEST(MmapFile, MissingFileIsIOError) {
  auto r = MmapFile::Open("/nonexistent/file/path");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(MmapFile, EmptyFileOk) {
  std::string path = testing::TempDir() + "/mmap_empty.txt";
  { std::ofstream f(path); }
  auto r = MmapFile::Open(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 0u);
  std::remove(path.c_str());
}

TEST(Hash, MixIsDeterministicAndSpreads) {
  EXPECT_EQ(HashMix64(1), HashMix64(1));
  EXPECT_NE(HashMix64(1), HashMix64(2));
  EXPECT_NE(HashString("abc"), HashString("abd"));
}

TEST(Value, PrimitivesRoundTrip) {
  EXPECT_EQ(Value::Int(5).i(), 5);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).f(), 2.5);
  EXPECT_TRUE(Value::Boolean(true).b());
  EXPECT_EQ(Value::Str("x").s(), "x");
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(Value, RecordFieldAccess) {
  Value r = Value::MakeRecord({"a", "b"}, {Value::Int(1), Value::Str("q")});
  auto a = r.GetField("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->i(), 1);
  EXPECT_FALSE(r.GetField("zzz").ok());
  EXPECT_FALSE(Value::Int(3).GetField("a").ok());
}

TEST(Value, CompareOrdersNumericAndStrings) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Float(2.0)), 0);
  EXPECT_GT(Value::Str("b").Compare(Value::Str("a")), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
}

TEST(Value, EqualsMixedNumeric) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Float(3.0)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::Str("3")));
  EXPECT_TRUE(Value::MakeList({Value::Int(1)}).Equals(Value::MakeList({Value::Int(1)})));
}

TEST(Value, HashConsistentWithEquals) {
  // Mixed-type numeric equality must imply equal hashes (used by join keys).
  EXPECT_EQ(Value::Int(7).Hash(), Value::Float(7.0).Hash());
  EXPECT_EQ(Value::Str("key").Hash(), Value::Str("key").Hash());
}

TEST(Value, ToStringFormats) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::Null().ToString(), "null");
  Value r = Value::MakeRecord({"a"}, {Value::Int(1)});
  EXPECT_EQ(r.ToString(), "{a: 1}");
  EXPECT_EQ(Value::MakeList({Value::Int(1), Value::Int(2)}).ToString(), "[1, 2]");
}

}  // namespace
}  // namespace proteus
