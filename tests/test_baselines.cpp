// Tests for the baseline engines: results must agree with Proteus (they run
// the same logical queries), and their architectural cost signatures must
// show up in the software counters.
#include <gtest/gtest.h>

#include "src/baselines/baselines.h"
#include "src/common/counters.h"
#include "tests/engine_test_util.h"

namespace proteus {
namespace baselines {
namespace {

using testutil::Corpus;

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Corpus& c = Corpus::Get();
    ASSERT_TRUE(row_.LoadTable("lineitem", c.lineitem).ok());
    ASSERT_TRUE(row_.LoadTable("orders", c.orders).ok());
    ASSERT_TRUE(row_.LoadDocuments("spam", c.spam).ok());
    ASSERT_TRUE(row_.LoadDocuments("denorm", c.denorm).ok());
    ASSERT_TRUE(col_.LoadTable("lineitem", c.lineitem).ok());
    ASSERT_TRUE(col_.LoadTable("orders", c.orders).ok());
    ColumnarOptions sorted;
    sorted.sort_key = "l_orderkey";
    ASSERT_TRUE(col_.LoadTable("lineitem_sorted", c.lineitem, sorted).ok());
    ASSERT_TRUE(col_.LoadJSONAsVarchar("lineitem_varchar", c.lineitem).ok());
    ASSERT_TRUE(doc_.LoadDocuments("lineitem", c.lineitem).ok());
    ASSERT_TRUE(doc_.LoadDocuments("orders", c.orders).ok());
    ASSERT_TRUE(doc_.LoadDocuments("denorm", c.denorm).ok());
    ASSERT_TRUE(doc_.LoadDocuments("spam", c.spam).ok());
  }

  RowStoreEngine row_;
  ColumnarEngine col_;
  DocStoreEngine doc_;
};

int64_t OracleCount(double key_lt) {
  int64_t n = 0;
  for (const auto& r : Corpus::Get().lineitem.rows()) {
    if (r[0].i() < key_lt) ++n;
  }
  return n;
}

TEST_F(BaselinesTest, AllEnginesAgreeOnCount) {
  BenchQuery q;
  q.table = "lineitem";
  q.where = {{.col = "l_orderkey", .cmp = '<', .val = 30}};
  q.aggs = {{AggKind::kCount, ""}};
  int64_t expected = OracleCount(30);
  auto a = row_.Execute(q);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->scalar().i(), expected);
  auto b = col_.Execute(q);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->scalar().i(), expected);
  auto c = doc_.Execute(q);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->scalar().i(), expected);
  q.table = "lineitem_sorted";
  auto d = col_.Execute(q);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->scalar().i(), expected);
  q.table = "lineitem_varchar";
  auto e = col_.Execute(q);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->scalar().i(), expected);
}

TEST_F(BaselinesTest, AggregatesMatchOracle) {
  const Corpus& c = Corpus::Get();
  double maxq = -1e300, sumt = 0;
  for (const auto& r : c.lineitem.rows()) {
    if (r[0].i() < 40) {
      maxq = std::max(maxq, r[2].f());
      sumt += r[5].f();
    }
  }
  BenchQuery q;
  q.table = "lineitem";
  q.where = {{.col = "l_orderkey", .cmp = '<', .val = 40}};
  q.aggs = {{AggKind::kMax, "l_quantity"}, {AggKind::kSum, "l_tax"}};
  for (int engine = 0; engine < 3; ++engine) {
    Result<QueryResult> r = engine == 0   ? row_.Execute(q)
                            : engine == 1 ? col_.Execute(q)
                                          : doc_.Execute(q);
    ASSERT_TRUE(r.ok()) << engine;
    EXPECT_NEAR(r->rows[0][0].AsFloat(), maxq, 1e-9) << engine;
    EXPECT_NEAR(r->rows[0][1].AsFloat(), sumt, 1e-6) << engine;
  }
}

TEST_F(BaselinesTest, JoinAgree) {
  const Corpus& c = Corpus::Get();
  int64_t expected = 0;
  for (const auto& r : c.lineitem.rows()) {
    if (r[0].i() < 25) ++expected;
  }
  BenchQuery q;
  q.table = "lineitem";
  q.where = {{.col = "l_orderkey", .cmp = '<', .val = 25}};
  q.aggs = {{AggKind::kCount, ""}};
  q.join_table = "orders";
  q.probe_key = "l_orderkey";
  q.build_key = "o_orderkey";
  auto a = row_.Execute(q);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->scalar().i(), expected);
  auto b = col_.Execute(q);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->scalar().i(), expected);
  auto d = doc_.Execute(q);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->scalar().i(), expected);
}

TEST_F(BaselinesTest, UnnestAgree) {
  const Corpus& c = Corpus::Get();
  int64_t expected = 0;
  for (const auto& r : c.denorm.rows()) {
    for (const auto& l : r[3].list()) {
      if (l.GetField("l_quantity")->f() > 25.0) ++expected;
    }
  }
  BenchQuery q;
  q.table = "denorm";
  q.aggs = {{AggKind::kCount, ""}};
  q.unnest_path = "lineitems";
  q.unnest_where = {{.col = "l_quantity", .cmp = '>', .val = 25.0}};
  auto a = row_.Execute(q);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->scalar().i(), expected);
  auto d = doc_.Execute(q);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->scalar().i(), expected);
  // Columnar has no unnest operator (as in the paper's MonetDB experience).
  EXPECT_FALSE(col_.Execute(q).ok());
}

TEST_F(BaselinesTest, GroupByAgree) {
  const Corpus& c = Corpus::Get();
  std::map<int64_t, int64_t> expected;
  for (const auto& r : c.lineitem.rows()) expected[r[1].i()]++;
  BenchQuery q;
  q.table = "lineitem";
  q.aggs = {{AggKind::kCount, ""}};
  q.group_by = "l_linenumber";
  for (int engine = 0; engine < 3; ++engine) {
    Result<QueryResult> r = engine == 0   ? row_.Execute(q)
                            : engine == 1 ? col_.Execute(q)
                                          : doc_.Execute(q);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->rows.size(), expected.size()) << engine;
    for (const auto& row : r->rows) {
      EXPECT_EQ(row[1].i(), expected.at(row[0].i())) << engine;
    }
  }
}

TEST_F(BaselinesTest, ColumnarMaterializationGrowsWithSelectivity) {
  BenchQuery lo;
  lo.table = "lineitem";
  lo.where = {{.col = "l_orderkey", .cmp = '<', .val = 6}};
  lo.aggs = {{AggKind::kMax, "l_quantity"}};
  BenchQuery hi = lo;
  hi.where[0].val = 60;
  ASSERT_TRUE(col_.Execute(lo).ok());
  size_t lo_bytes = col_.last_materialized_bytes();
  ASSERT_TRUE(col_.Execute(hi).ok());
  size_t hi_bytes = col_.last_materialized_bytes();
  EXPECT_GT(hi_bytes, lo_bytes);  // the crossover driver in Figs 6/8/10
}

TEST_F(BaselinesTest, SortedTableStillCorrectUnderZoneSkipping) {
  for (double sel : {3.0, 11.0, 47.0, 60.0}) {
    BenchQuery q;
    q.table = "lineitem_sorted";
    q.where = {{.col = "l_orderkey", .cmp = '<', .val = sel}};
    q.aggs = {{AggKind::kCount, ""}};
    auto r = col_.Execute(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->scalar().i(), OracleCount(sel)) << sel;
  }
}

TEST_F(BaselinesTest, RowStoreCountsInterpretationOverhead) {
  GlobalCounters().Reset();
  BenchQuery q;
  q.table = "lineitem";
  q.where = {{.col = "l_orderkey", .cmp = '<', .val = 60}};
  q.aggs = {{AggKind::kCount, ""}};
  ASSERT_TRUE(row_.Execute(q).ok());
  EXPECT_GT(GlobalCounters().virtual_calls, Corpus::Get().lineitem.num_rows());
}

TEST(DocEncoding, RoundTripNestedDocument) {
  Value rec = Value::MakeRecord(
      {"id", "score", "flag", "name", "origin", "items"},
      {Value::Int(7), Value::Float(0.25), Value::Boolean(true), Value::Str("hello"),
       Value::MakeRecord({"country"}, {Value::Str("US")}),
       Value::MakeList({Value::Int(1), Value::MakeRecord({"x"}, {Value::Int(2)})})});
  std::string buf;
  EncodeDocument(rec, &buf);
  double num;
  EXPECT_TRUE(DocGetNumeric(buf.data(), "id", &num));
  EXPECT_EQ(num, 7);
  EXPECT_TRUE(DocGetNumeric(buf.data(), "score", &num));
  EXPECT_DOUBLE_EQ(num, 0.25);
  std::string_view s;
  EXPECT_TRUE(DocGetString(buf.data(), "name", &s));
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(DocGetString(buf.data(), "origin.country", &s));
  EXPECT_EQ(s, "US");
  const char* arr;
  uint32_t count;
  EXPECT_TRUE(DocGetArray(buf.data(), "items", &arr, &count));
  EXPECT_EQ(count, 2u);
  EXPECT_FALSE(DocGetNumeric(buf.data(), "missing", &num));
  EXPECT_FALSE(DocGetNumeric(buf.data(), "name", &num));  // wrong type
}

}  // namespace
}  // namespace baselines
}  // namespace proteus
