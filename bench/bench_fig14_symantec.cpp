// Figure 14 + Table 3: the Symantec spam-analysis workload (paper §7.2).
//
// A 50-query sequence over three silos — a binary history table, CSV
// classification output, and JSON spam objects — run under three approaches:
//
//   PostgreSQL-style:  one general-purpose row store holding everything;
//                      CSV and JSON must be loaded before their first query
//                      (charged to the workload, as in Table 3); Q39 hits a
//                      nested-loop plan because the JSON side is opaque to
//                      the optimizer.
//   Federated:         DBMS C-style columnar engine for binary+CSV (sorted
//                      on mail_id), MongoDB-style document store for JSON;
//                      cross-silo queries filter in each engine, export the
//                      qualifying rows, and join in a mediation layer whose
//                      time is charged to the "Middleware" phase.
//   Proteus:           queries raw files in situ; adaptive caching enabled;
//                      structural-index construction and cache population
//                      are charged to the first query touching each file.
//
// Output: one Fig-14 row per query (ms per approach) and the Table-3 phase
// summary (Load CSV / Load JSON / Middleware / Q39 / rest / total).
#include "bench/bench_common.h"

#include <unordered_map>

namespace proteus {
namespace bench {
namespace {

using baselines::AggKind;
using baselines::BenchAgg;
using baselines::BenchPred;
using baselines::BenchQuery;

// ---------------------------------------------------------------------------
// Boxed helpers for the mediation layer
// ---------------------------------------------------------------------------

Result<Value> GetDotted(const Value& doc, const std::string& dotted) {
  Value cur = doc;
  size_t start = 0;
  while (true) {
    size_t dot = dotted.find('.', start);
    auto f = cur.GetField(dotted.substr(start, dot == std::string::npos ? dot : dot - start));
    if (!f.ok()) return f.status();
    cur = *f;
    if (dot == std::string::npos) return cur;
    start = dot + 1;
  }
}

bool PredPass(const Value& doc, const BenchPred& p) {
  auto v = GetDotted(doc, p.col);
  if (!v.ok() || v->is_null()) return false;
  if (p.is_string) return v->is_string() && v->s() == p.sval;
  double d = v->AsFloat();
  switch (p.cmp) {
    case '<': return d < p.val;
    case '>': return d > p.val;
    case '=': return d == p.val;
  }
  return false;
}

/// One silo's contribution to a federated cross query.
struct Side {
  const RowTable* data;
  std::vector<BenchPred> preds;
  std::string key;
  /// Engine-side filtering cost, simulated by running the count query in the
  /// owning specialized engine.
  std::function<double()> engine_filter;
};

/// Mediation layer: each engine filters (timed), qualifying rows are
/// exported as boxed records (timed), and the join runs centrally (timed).
double FederatedCross(const std::vector<Side>& sides, const std::vector<BenchAgg>& aggs,
                      const std::vector<std::string>& agg_side_cols, double* middleware_ms) {
  double engine_ms = 0;
  for (const auto& s : sides) engine_ms += s.engine_filter();

  double mw = WallMs([&] {
    // Export qualifying rows out of each engine.
    std::vector<std::vector<Value>> exported(sides.size());
    std::vector<std::vector<int64_t>> keys(sides.size());
    for (size_t i = 0; i < sides.size(); ++i) {
      const Side& s = sides[i];
      for (size_t r = 0; r < s.data->num_rows(); ++r) {
        Value rec = s.data->RecordAt(r);  // serialize out of the engine
        bool pass = true;
        for (const auto& p : s.preds) pass = pass && PredPass(rec, p);
        if (!pass) continue;
        auto k = GetDotted(rec, s.key);
        if (!k.ok()) continue;
        keys[i].push_back(k->i());
        exported[i].push_back(std::move(rec));
      }
    }
    // Left-deep boxed hash joins across silos.
    std::vector<size_t> match_count(exported[0].size(), 1);
    std::vector<const Value*> base;
    for (const auto& v : exported[0]) base.push_back(&v);
    // Aggregate while probing the remaining sides.
    double count = 0, agg0 = 0, agg_min = 1e300, agg_max = -1e300, agg_sum = 0;
    (void)agg0;
    std::unordered_multimap<int64_t, const Value*> ht1, ht2;
    for (size_t r = 0; r < exported[1].size(); ++r) ht1.emplace(keys[1][r], &exported[1][r]);
    if (sides.size() == 3) {
      for (size_t r = 0; r < exported[2].size(); ++r) ht2.emplace(keys[2][r], &exported[2][r]);
    }
    for (size_t r = 0; r < exported[0].size(); ++r) {
      auto [lo, hi] = ht1.equal_range(keys[0][r]);
      for (auto it = lo; it != hi; ++it) {
        auto emit = [&](const Value* v1, const Value* v2) {
          ++count;
          for (size_t a = 0; a < aggs.size(); ++a) {
            if (aggs[a].kind == AggKind::kCount) continue;
            const Value* src = agg_side_cols[a] == "0"   ? &exported[0][r]
                               : agg_side_cols[a] == "1" ? v1
                                                         : v2;
            auto val = GetDotted(*src, aggs[a].col);
            if (!val.ok()) continue;
            double d = val->AsFloat();
            agg_sum += d;
            agg_min = std::min(agg_min, d);
            agg_max = std::max(agg_max, d);
          }
        };
        if (sides.size() == 3) {
          auto [lo2, hi2] = ht2.equal_range(keys[0][r]);
          for (auto it2 = lo2; it2 != hi2; ++it2) emit(it->second, it2->second);
        } else {
          emit(it->second, nullptr);
        }
      }
    }
    benchmark::DoNotOptimize(count + agg_sum + agg_min + agg_max);
  });
  *middleware_ms += mw;
  return engine_ms + mw;
}

// ---------------------------------------------------------------------------
// The 50-query workload
// ---------------------------------------------------------------------------

struct WorkloadQuery {
  int id;
  std::string group;
  std::function<double()> postgres;
  std::function<double()> federated;
  std::function<double()> proteus;
};

struct Workload {
  baselines::RowStoreEngine pg;
  baselines::ColumnarEngine dbms_c;   // binary + CSV, sorted on mail_id
  baselines::DocStoreEngine mongo;    // JSON
  std::unique_ptr<QueryEngine> proteus;
  double pg_load_csv_ms = 0, pg_load_json_ms = 0;
  double fed_load_csv_ms = 0, fed_load_json_ms = 0;
  double middleware_ms = 0;
  bool pg_csv_loaded = false, pg_json_loaded = false;
  bool fed_csv_loaded = false, fed_json_loaded = false;

  Workload() {
    const BenchCorpus& c = BenchCorpus::Get();
    // Binary history is pre-loaded in both DB approaches (the paper starts
    // with the OS cache containing the binary table).
    (void)*pg.LoadTable("bin", c.spam_bin);
    (void)*dbms_c.LoadTable("bin", c.spam_bin,
                            baselines::ColumnarOptions{.sort_key = "mail_id"});
    EngineOptions opts = BenchEngineOptions();
    opts.cache_policy.enabled = true;
    proteus = std::make_unique<QueryEngine>(opts);
    RegisterBenchDatasets(proteus.get());
  }

  // Lazy load-on-first-touch, charged like the paper's Table 3 phases.
  double PgEnsure(char silo) {
    const BenchCorpus& c = BenchCorpus::Get();
    if (silo == 'c' && !pg_csv_loaded) {
      pg_csv_loaded = true;
      pg_load_csv_ms = *pg.LoadTable("csv", c.spam_csv);
      return pg_load_csv_ms;
    }
    if (silo == 'j' && !pg_json_loaded) {
      pg_json_loaded = true;
      pg_load_json_ms = *pg.LoadDocuments("json", c.spam_json);
      return pg_load_json_ms;
    }
    return 0;
  }
  double FedEnsure(char silo) {
    const BenchCorpus& c = BenchCorpus::Get();
    if (silo == 'c' && !fed_csv_loaded) {
      fed_csv_loaded = true;
      fed_load_csv_ms = *dbms_c.LoadTable("csv", c.spam_csv,
                                          baselines::ColumnarOptions{.sort_key = "mail_id"});
      return fed_load_csv_ms;
    }
    if (silo == 'j' && !fed_json_loaded) {
      fed_json_loaded = true;
      fed_load_json_ms = *mongo.LoadDocuments("json", c.spam_json);
      return fed_load_json_ms;
    }
    return 0;
  }

  double RunPg(const BenchQuery& q) {
    return WallMs([&] {
      auto r = pg.Execute(q);
      if (!r.ok()) {
        fprintf(stderr, "pg: %s\n", r.status().ToString().c_str());
        std::abort();
      }
      benchmark::DoNotOptimize(r->rows);
    });
  }
  double RunCol(const BenchQuery& q) {
    return WallMs([&] {
      auto r = dbms_c.Execute(q);
      if (!r.ok()) {
        fprintf(stderr, "col: %s\n", r.status().ToString().c_str());
        std::abort();
      }
      benchmark::DoNotOptimize(r->rows);
    });
  }
  double RunDoc(const BenchQuery& q) {
    return WallMs([&] {
      auto r = mongo.Execute(q);
      if (!r.ok()) {
        fprintf(stderr, "doc: %s\n", r.status().ToString().c_str());
        std::abort();
      }
      benchmark::DoNotOptimize(r->rows);
    });
  }
  double proteus_codegen_ms = 0;  ///< accumulated LLVM compile time

  double RunProteus(const std::string& sql) {
    double ms = WallMs([&] {
      auto r = proteus->Execute(sql);
      if (!r.ok()) {
        fprintf(stderr, "proteus: %s\n  %s\n", sql.c_str(), r.status().ToString().c_str());
        std::abort();
      }
      benchmark::DoNotOptimize(r->rows);
    });
    proteus_codegen_ms += proteus->telemetry().compile_ms;
    return ms;
  }
};

int64_t MailKey(int percent) {
  return static_cast<int64_t>(BenchMails()) * percent / 100;
}

std::vector<WorkloadQuery> BuildWorkload(Workload* w) {
  const BenchCorpus& c = BenchCorpus::Get();
  std::vector<WorkloadQuery> qs;

  // Helper lambdas -----------------------------------------------------------
  auto single = [&](int id, const std::string& grp, char silo, const BenchQuery& bq,
                    const std::string& sql) {
    qs.push_back(
        {id, grp,
         [w, silo, bq] { return w->PgEnsure(silo) + w->RunPg(bq); },
         [w, silo, bq] {
           double load = w->FedEnsure(silo);
           return load + (silo == 'j' ? w->RunDoc(bq) : w->RunCol(bq));
         },
         [w, sql] { return w->RunProteus(sql); }});
  };
  auto bincsv = [&](int id, const BenchQuery& bq, const std::string& sql) {
    // Both silos live inside DBMS C: no middleware needed.
    qs.push_back({id, "BinCSV",
                  [w, bq] { return w->PgEnsure('c') + w->RunPg(bq); },
                  [w, bq] { return w->FedEnsure('c') + w->RunCol(bq); },
                  [w, sql] { return w->RunProteus(sql); }});
  };
  auto cross = [&](int id, const std::string& grp, const BenchQuery& pg_q,
                   std::vector<Side> sides, std::vector<BenchAgg> aggs,
                   std::vector<std::string> agg_sides, const std::string& sql,
                   bool pg_nested_loop = false) {
    BenchQuery pq = pg_q;
    pq.nested_loop = pg_nested_loop;
    char load1 = grp == "BinJSON" ? 'j' : 'c';
    bool needs_json = grp != "BinCSV";
    qs.push_back({id, grp,
                  [w, pq, load1, needs_json] {
                    double load = w->PgEnsure(load1);
                    if (needs_json) load += w->PgEnsure('j');
                    return load + w->RunPg(pq);
                  },
                  [w, sides, aggs, agg_sides, load1, needs_json] {
                    double load = w->FedEnsure(load1);
                    if (needs_json) load += w->FedEnsure('j');
                    return load +
                           FederatedCross(sides, aggs, agg_sides, &w->middleware_ms);
                  },
                  [w, sql] { return w->RunProteus(sql); }});
  };

  auto count_agg = std::vector<BenchAgg>{{AggKind::kCount, ""}};
  auto fed_bin_filter = [w](std::vector<BenchPred> preds) {
    return std::function<double()>([w, preds] {
      BenchQuery q{.table = "bin", .where = preds, .aggs = {{AggKind::kCount, ""}}};
      return w->RunCol(q);
    });
  };
  auto fed_csv_filter = [w](std::vector<BenchPred> preds) {
    return std::function<double()>([w, preds] {
      BenchQuery q{.table = "csv", .where = preds, .aggs = {{AggKind::kCount, ""}}};
      return w->RunCol(q);
    });
  };
  auto fed_json_filter = [w](std::vector<BenchPred> preds) {
    return std::function<double()>([w, preds] {
      BenchQuery q{.table = "json", .where = preds, .aggs = {{AggKind::kCount, ""}}};
      return w->RunDoc(q);
    });
  };

  // --- Q1-Q8: binary --------------------------------------------------------
  auto bin_q = [&](int id, std::vector<BenchPred> preds, std::vector<BenchAgg> aggs,
                   std::string group_by, const std::string& sql) {
    BenchQuery bq{.table = "bin", .where = preds, .aggs = aggs, .group_by = group_by};
    single(id, "BIN", 'b', bq, sql);
  };
  bin_q(1, {{.col = "spam_score", .cmp = '>', .val = 0.9}}, count_agg, "",
        "SELECT count(*) FROM spam_bin WHERE spam_score > 0.9");
  bin_q(2, {{.col = "mail_id", .cmp = '<', .val = double(MailKey(5))}},
        {{AggKind::kCount, ""}, {AggKind::kMax, "spam_score"}}, "",
        "SELECT count(*), max(spam_score) FROM spam_bin WHERE mail_id < " +
            std::to_string(MailKey(5)));
  bin_q(3, {{.col = "day", .cmp = '<', .val = 90}}, {{AggKind::kSum, "hits"}}, "",
        "SELECT sum(hits) FROM spam_bin WHERE day < 90");
  bin_q(4, {{.col = "spam_score", .cmp = '>', .val = 0.5}}, count_agg, "day",
        "SELECT day, count(*) FROM spam_bin WHERE spam_score > 0.5 GROUP BY day");
  bin_q(5, {{.col = "hits", .cmp = '>', .val = 400}}, count_agg, "",
        "SELECT count(*) FROM spam_bin WHERE hits > 400");
  bin_q(6, {{.col = "mail_id", .cmp = '<', .val = double(MailKey(25))}},
        {{AggKind::kMax, "hits"}, {AggKind::kMin, "spam_score"}}, "",
        "SELECT max(hits), min(spam_score) FROM spam_bin WHERE mail_id < " +
            std::to_string(MailKey(25)));
  bin_q(7, {{.col = "day", .cmp = '>', .val = 180}},
        {{AggKind::kCount, ""}, {AggKind::kSum, "hits"}}, "src",
        "SELECT src, count(*), sum(hits) FROM spam_bin WHERE day > 180 GROUP BY src");
  bin_q(8, {{.col = "mail_id", .cmp = '<', .val = double(MailKey(1))}}, count_agg, "",
        "SELECT count(*) FROM spam_bin WHERE mail_id < " + std::to_string(MailKey(1)));

  // --- Q9-Q15: CSV ------------------------------------------------------------
  auto csv_q = [&](int id, std::vector<BenchPred> preds, std::vector<BenchAgg> aggs,
                   std::string group_by, const std::string& sql) {
    BenchQuery bq{.table = "csv", .where = preds, .aggs = aggs, .group_by = group_by};
    single(id, "CSV", 'c', bq, sql);
  };
  csv_q(9, {{.col = "score_a", .cmp = '>', .val = 0.8}}, count_agg, "",
        "SELECT count(*) FROM spam_csv WHERE score_a > 0.8");
  csv_q(10, {{.col = "mail_id", .cmp = '<', .val = double(MailKey(10))}},
        {{AggKind::kCount, ""}, {AggKind::kMax, "score_b"}}, "",
        "SELECT count(*), max(score_b) FROM spam_csv WHERE mail_id < " +
            std::to_string(MailKey(10)));
  csv_q(11, {{.col = "cls_a", .cmp = '<', .val = 10}}, {{AggKind::kSum, "score_a"}}, "",
        "SELECT sum(score_a) FROM spam_csv WHERE cls_a < 10");
  csv_q(12,
        {{.col = "label", .sval = "pharma", .is_string = true},
         {.col = "score_a", .cmp = '>', .val = 0.5}},
        count_agg, "",
        "SELECT count(*) FROM spam_csv WHERE label = 'pharma' and score_a > 0.5");
  csv_q(13, {}, count_agg, "label", "SELECT label, count(*) FROM spam_csv GROUP BY label");
  csv_q(14, {{.col = "mail_id", .cmp = '<', .val = double(MailKey(20))}},
        {{AggKind::kCount, ""}, {AggKind::kMin, "score_b"}}, "",
        "SELECT count(*), min(score_b) FROM spam_csv WHERE mail_id < " +
            std::to_string(MailKey(20)));
  csv_q(15, {}, {{AggKind::kCount, ""}, {AggKind::kSum, "score_a"}}, "iter",
        "SELECT iter, count(*), sum(score_a) FROM spam_csv GROUP BY iter");

  // --- Q16-Q25: JSON ----------------------------------------------------------
  auto json_q = [&](int id, std::vector<BenchPred> preds, std::vector<BenchAgg> aggs,
                    std::string group_by, const std::string& sql) {
    BenchQuery bq{.table = "json", .where = preds, .aggs = aggs, .group_by = group_by};
    single(id, "JSON", 'j', bq, sql);
  };
  json_q(16, {{.col = "body_len", .cmp = '>', .val = 1000}}, count_agg, "",
         "SELECT count(*) FROM spam_json WHERE body_len > 1000");
  json_q(17, {{.col = "mail_id", .cmp = '<', .val = double(MailKey(10))}},
         {{AggKind::kCount, ""}, {AggKind::kMax, "score"}}, "",
         "SELECT count(*), max(score) FROM spam_json WHERE mail_id < " +
             std::to_string(MailKey(10)));
  json_q(18, {{.col = "lang", .sval = "en", .is_string = true}}, count_agg, "",
         "SELECT count(*) FROM spam_json WHERE lang = 'en'");
  {
    BenchQuery bq{.table = "json", .aggs = count_agg};
    bq.unnest_path = "classes";
    bq.unnest_where = {{.col = "label", .cmp = '>', .val = 16}};
    single(19, "JSON", 'j', bq,
           "for { s <- spam_json, k <- s.classes, k.label > 16 } yield count");
  }
  json_q(20, {{.col = "score", .cmp = '>', .val = 0.3}}, count_agg, "bot",
         "SELECT bot, count(*) FROM spam_json WHERE score > 0.3 GROUP BY bot");
  json_q(21, {{.col = "origin.country", .sval = "US", .is_string = true}}, count_agg, "",
         "for { s <- spam_json, s.origin.country = 'US' } yield count");
  json_q(22, {{.col = "body_len", .cmp = '<', .val = 4000}}, {{AggKind::kSum, "score"}}, "",
         "SELECT sum(score) FROM spam_json WHERE body_len < 4000");
  {
    BenchQuery bq{.table = "json", .aggs = count_agg};
    bq.unnest_path = "classes";
    bq.unnest_where = {{.col = "label", .cmp = '>', .val = 8}};
    single(23, "JSON", 'j', bq,
           "for { s <- spam_json, k <- s.classes, k.label > 8 } yield (count, max k.label)");
  }
  json_q(24, {}, {{AggKind::kCount, ""}, {AggKind::kMax, "body_len"}}, "lang",
         "SELECT lang, count(*), max(body_len) FROM spam_json GROUP BY lang");
  json_q(25, {{.col = "mail_id", .cmp = '<', .val = double(MailKey(25))}},
         {{AggKind::kCount, ""}, {AggKind::kMax, "body_len"}, {AggKind::kSum, "score"}}, "",
         "SELECT count(*), max(body_len), sum(score) FROM spam_json WHERE mail_id < " +
             std::to_string(MailKey(25)));

  // --- Q26-Q30: binary ⋈ CSV ---------------------------------------------------
  auto bin_csv_join = [&](int id, std::vector<BenchPred> bin_preds,
                          std::vector<BenchPred> csv_preds, std::vector<BenchAgg> aggs,
                          std::vector<BenchAgg> build_aggs, const std::string& sql) {
    BenchQuery bq{.table = "csv", .where = csv_preds, .aggs = aggs};
    bq.join_table = "bin";
    bq.probe_key = "mail_id";
    bq.build_key = "mail_id";
    bq.build_where = bin_preds;
    bq.build_aggs = build_aggs;
    bincsv(id, bq, sql);
  };
  bin_csv_join(26, {{.col = "spam_score", .cmp = '>', .val = 0.8}},
               {{.col = "score_a", .cmp = '>', .val = 0.5}}, count_agg, {},
               "SELECT count(*) FROM spam_bin b JOIN spam_csv c ON b.mail_id = c.mail_id "
               "WHERE b.spam_score > 0.8 and c.score_a > 0.5");
  bin_csv_join(27, {{.col = "mail_id", .cmp = '<', .val = double(MailKey(5))}}, {},
               {{AggKind::kCount, ""}, {AggKind::kMax, "score_b"}}, {},
               "SELECT count(*), max(c.score_b) FROM spam_bin b JOIN spam_csv c ON "
               "b.mail_id = c.mail_id WHERE b.mail_id < " +
                   std::to_string(MailKey(5)));
  bin_csv_join(28, {{.col = "day", .cmp = '<', .val = 100}},
               {{.col = "label", .sval = "phishing", .is_string = true}}, count_agg, {},
               "SELECT count(*) FROM spam_bin b JOIN spam_csv c ON b.mail_id = c.mail_id "
               "WHERE c.label = 'phishing' and b.day < 100");
  bin_csv_join(29, {{.col = "mail_id", .cmp = '<', .val = double(MailKey(2))}}, {},
               count_agg, {},
               "SELECT count(*) FROM spam_bin b JOIN spam_csv c ON b.mail_id = c.mail_id "
               "WHERE b.mail_id < " +
                   std::to_string(MailKey(2)));
  bin_csv_join(30, {}, {{.col = "cls_a", .cmp = '<', .val = 20}},
               count_agg, {{AggKind::kSum, "hits"}},
               "SELECT count(*), sum(b.hits) FROM spam_bin b JOIN spam_csv c ON "
               "b.mail_id = c.mail_id WHERE c.cls_a < 20");

  // --- Q31-Q50: cross-silo ------------------------------------------------------
  auto cross2 = [&](int id, const std::string& grp, std::vector<BenchPred> a_preds,
                    std::vector<BenchPred> b_preds, const RowTable* a_data,
                    const RowTable* b_data, std::function<double()> a_filter,
                    std::function<double()> b_filter, const std::string& pg_probe,
                    const std::string& pg_build, const std::string& sql,
                    bool nested = false) {
    BenchQuery pg_q{.table = pg_probe, .where = a_preds, .aggs = count_agg};
    pg_q.join_table = pg_build;
    pg_q.probe_key = "mail_id";
    pg_q.build_key = "mail_id";
    pg_q.build_where = b_preds;
    std::vector<Side> sides = {{a_data, a_preds, "mail_id", a_filter},
                               {b_data, b_preds, "mail_id", b_filter}};
    cross(id, grp, pg_q, sides, count_agg, {"0"}, sql, nested);
  };

  // Bin ⋈ JSON (Q31-Q35)
  cross2(31, "BinJSON", {{.col = "spam_score", .cmp = '>', .val = 0.5}},
         {{.col = "body_len", .cmp = '>', .val = 3000}}, &c.spam_bin, &c.spam_json,
         fed_bin_filter({{.col = "spam_score", .cmp = '>', .val = 0.5}}),
         fed_json_filter({{.col = "body_len", .cmp = '>', .val = 3000}}), "bin", "json",
         "SELECT count(*) FROM spam_bin b JOIN spam_json j ON b.mail_id = j.mail_id "
         "WHERE b.spam_score > 0.5 and j.body_len > 3000");
  cross2(32, "BinJSON", {{.col = "mail_id", .cmp = '<', .val = double(MailKey(10))}}, {},
         &c.spam_bin, &c.spam_json,
         fed_bin_filter({{.col = "mail_id", .cmp = '<', .val = double(MailKey(10))}}),
         fed_json_filter({}), "bin", "json",
         "SELECT count(*), max(j.score) FROM spam_bin b JOIN spam_json j ON "
         "b.mail_id = j.mail_id WHERE b.mail_id < " +
             std::to_string(MailKey(10)));
  cross2(33, "BinJSON", {{.col = "day", .cmp = '<', .val = 200}},
         {{.col = "lang", .sval = "ru", .is_string = true}}, &c.spam_bin, &c.spam_json,
         fed_bin_filter({{.col = "day", .cmp = '<', .val = 200}}),
         fed_json_filter({{.col = "lang", .sval = "ru", .is_string = true}}), "bin", "json",
         "SELECT count(*) FROM spam_bin b JOIN spam_json j ON b.mail_id = j.mail_id "
         "WHERE j.lang = 'ru' and b.day < 200");
  cross2(34, "BinJSON", {}, {{.col = "body_len", .cmp = '<', .val = 2000}}, &c.spam_bin,
         &c.spam_json, fed_bin_filter({}),
         fed_json_filter({{.col = "body_len", .cmp = '<', .val = 2000}}), "bin", "json",
         "SELECT count(*), sum(b.hits) FROM spam_bin b JOIN spam_json j ON "
         "b.mail_id = j.mail_id WHERE j.body_len < 2000");
  cross2(35, "BinJSON", {{.col = "mail_id", .cmp = '<', .val = double(MailKey(25))}}, {},
         &c.spam_bin, &c.spam_json,
         fed_bin_filter({{.col = "mail_id", .cmp = '<', .val = double(MailKey(25))}}),
         fed_json_filter({}), "bin", "json",
         "SELECT count(*) FROM spam_bin b JOIN spam_json j ON b.mail_id = j.mail_id "
         "WHERE b.mail_id < " +
             std::to_string(MailKey(25)));

  // CSV ⋈ JSON (Q36-Q40; Q39 = PostgreSQL nested-loop outlier)
  cross2(36, "CSVJSON", {{.col = "score_a", .cmp = '>', .val = 0.7}},
         {{.col = "body_len", .cmp = '>', .val = 1000}}, &c.spam_csv, &c.spam_json,
         fed_csv_filter({{.col = "score_a", .cmp = '>', .val = 0.7}}),
         fed_json_filter({{.col = "body_len", .cmp = '>', .val = 1000}}), "csv", "json",
         "SELECT count(*) FROM spam_csv c JOIN spam_json j ON c.mail_id = j.mail_id "
         "WHERE c.score_a > 0.7 and j.body_len > 1000");
  cross2(37, "CSVJSON", {{.col = "mail_id", .cmp = '<', .val = double(MailKey(10))}}, {},
         &c.spam_csv, &c.spam_json,
         fed_csv_filter({{.col = "mail_id", .cmp = '<', .val = double(MailKey(10))}}),
         fed_json_filter({}), "csv", "json",
         "SELECT count(*), max(j.score) FROM spam_csv c JOIN spam_json j ON "
         "c.mail_id = j.mail_id WHERE c.mail_id < " +
             std::to_string(MailKey(10)));
  cross2(38, "CSVJSON", {{.col = "label", .sval = "stock", .is_string = true}},
         {{.col = "lang", .sval = "en", .is_string = true}}, &c.spam_csv, &c.spam_json,
         fed_csv_filter({{.col = "label", .sval = "stock", .is_string = true}}),
         fed_json_filter({{.col = "lang", .sval = "en", .is_string = true}}), "csv", "json",
         "SELECT count(*) FROM spam_csv c JOIN spam_json j ON c.mail_id = j.mail_id "
         "WHERE c.label = 'stock' and j.lang = 'en'");
  cross2(39, "CSVJSON", {{.col = "score_a", .cmp = '>', .val = 0.9}},
         {{.col = "score", .cmp = '>', .val = 0.9}}, &c.spam_csv, &c.spam_json,
         fed_csv_filter({{.col = "score_a", .cmp = '>', .val = 0.9}}),
         fed_json_filter({{.col = "score", .cmp = '>', .val = 0.9}}), "csv", "json",
         "SELECT count(*) FROM spam_csv c JOIN spam_json j ON c.mail_id = j.mail_id "
         "WHERE c.score_a > 0.9 and j.score > 0.9",
         /*nested=*/true);
  cross2(40, "CSVJSON", {}, {{.col = "body_len", .cmp = '<', .val = 5000}}, &c.spam_csv,
         &c.spam_json, fed_csv_filter({}),
         fed_json_filter({{.col = "body_len", .cmp = '<', .val = 5000}}), "csv", "json",
         "SELECT count(*), max(c.score_b) FROM spam_csv c JOIN spam_json j ON "
         "c.mail_id = j.mail_id WHERE j.body_len < 5000");

  // All three silos (Q41-Q50).
  for (int i = 0; i < 10; ++i) {
    int id = 41 + i;
    int pct = 2 + i * 2;  // 2%..20%
    double score = 0.2 + 0.06 * i;
    std::vector<BenchPred> bin_p{{.col = "mail_id", .cmp = '<', .val = double(MailKey(pct))}};
    std::vector<BenchPred> csv_p{{.col = "score_a", .cmp = '>', .val = score}};
    std::vector<BenchPred> json_p;
    if (i % 3 == 0) json_p.push_back({.col = "lang", .sval = "en", .is_string = true});
    if (i % 3 == 1) json_p.push_back({.col = "body_len", .cmp = '>', .val = 500.0 + 200 * i});

    std::string sql =
        "SELECT count(*) FROM spam_bin b JOIN spam_csv c ON b.mail_id = c.mail_id "
        "JOIN spam_json j ON c.mail_id = j.mail_id WHERE b.mail_id < " +
        std::to_string(MailKey(pct)) + " and c.score_a > " + std::to_string(score);
    if (i % 3 == 0) sql += " and j.lang = 'en'";
    if (i % 3 == 1) sql += " and j.body_len > " + std::to_string(500 + 200 * i);

    std::vector<Side> sides = {{&c.spam_bin, bin_p, "mail_id", fed_bin_filter(bin_p)},
                               {&c.spam_csv, csv_p, "mail_id", fed_csv_filter(csv_p)},
                               {&c.spam_json, json_p, "mail_id", fed_json_filter(json_p)}};
    // PostgreSQL: the three-way join runs as two boxed hash joins; model it
    // as bin⋈csv (hash) whose result (filtered by preds) joins json — we use
    // the middleware join machinery with zero engine-filter cost, since all
    // data already sits inside the row store, plus the row store's own scan.
    BenchQuery pg_scan{.table = "bin", .where = bin_p, .aggs = count_agg};
    qs.push_back(
        {id, "BINCSVJSON",
         [w, sides, bin_p, pg_scan] {
           double load = w->PgEnsure('c') + w->PgEnsure('j');
           double unused_mw = 0;
           std::vector<Side> pg_sides = sides;
           for (auto& s : pg_sides) s.engine_filter = [] { return 0.0; };
           return load + w->RunPg(pg_scan) +
                  FederatedCross(pg_sides, {{AggKind::kCount, ""}}, {"0"}, &unused_mw);
         },
         [w, sides] {
           double load = w->FedEnsure('c') + w->FedEnsure('j');
           return load +
                  FederatedCross(sides, {{AggKind::kCount, ""}}, {"0"}, &w->middleware_ms);
         },
         [w, sql] { return w->RunProteus(sql); }});
  }
  return qs;
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  using namespace proteus::bench;
  setbuf(stdout, nullptr);
  Workload w;
  auto queries = BuildWorkload(&w);

  printf("-- Figure 14: spam analysis workload (%llu mails; ms per query) --\n",
         static_cast<unsigned long long>(BenchMails()));
  printf("%-4s %-11s %12s %12s %12s\n", "Q", "group", "PostgreSQL", "Federated", "Proteus");

  double pg_total = 0, fed_total = 0, pro_total = 0;
  double pg_q39 = 0, fed_q39 = 0, pro_q39 = 0;
  for (auto& q : queries) {
    // fig14 drives its workload directly (no RegisterMs), so it feeds the
    // BENCH_fig14.json reporter by hand — one variant per query × system,
    // with the Proteus engine's telemetry attached to the Proteus row.
    std::string base = "fig14/Q" + std::to_string(q.id) + "_" + q.group + "/";
    double pg = q.postgres();
    BenchReport::Get().Record(base + "PostgreSQL", pg);
    double fed = q.federated();
    BenchReport::Get().Record(base + "Federated", fed);
    double pro = q.proteus();
    BenchReport::Get().AttachTelemetry(w.proteus->telemetry());
    BenchReport::Get().Record(base + "Proteus", pro);
    pg_total += pg;
    fed_total += fed;
    pro_total += pro;
    if (q.id == 39) {
      pg_q39 = pg;
      fed_q39 = fed;
      pro_q39 = pro;
    }
    printf("Q%-3d %-11s %12.2f %12.2f %12.2f\n", q.id, q.group.c_str(), pg, fed, pro);
  }

  printf("\n-- Table 3: execution time per workload phase (ms) --\n");
  printf("%-22s %12s %12s %12s\n", "phase", "PostgreSQL", "Federated", "Proteus");
  printf("%-22s %12.2f %12.2f %12.2f\n", "Load CSV", w.pg_load_csv_ms, w.fed_load_csv_ms, 0.0);
  printf("%-22s %12.2f %12.2f %12.2f\n", "Load JSON", w.pg_load_json_ms, w.fed_load_json_ms,
         0.0);
  printf("%-22s %12.2f %12.2f %12.2f\n", "Middleware", 0.0, w.middleware_ms, 0.0);
  printf("%-22s %12.2f %12.2f %12.2f\n", "Q39", pg_q39, fed_q39, pro_q39);
  double pg_rest = pg_total - pg_q39 - w.pg_load_csv_ms - w.pg_load_json_ms;
  double fed_rest = fed_total - fed_q39 - w.fed_load_csv_ms - w.fed_load_json_ms -
                    w.middleware_ms;
  printf("%-22s %12.2f %12.2f %12.2f\n", "Queries (rest)", pg_rest, fed_rest,
         pro_total - pro_q39);
  printf("%-22s %12.2f %12.2f %12.2f\n", "Total", pg_total, fed_total, pro_total);
  printf("%-22s %12s %12s %12.2f  (per-query engine generation, ~%.1f ms each)\n",
         "  of which codegen", "-", "-", w.proteus_codegen_ms,
         w.proteus_codegen_ms / queries.size());
  printf("\nProteus speedup: %.2fx vs PostgreSQL-style, %.2fx vs federated\n",
         pg_total / pro_total, fed_total / pro_total);
  printf("Proteus cache footprint: %zu bytes in %zu blocks\n",
         w.proteus->caches().total_bytes(), w.proteus->caches().num_blocks());
  return WriteBenchReport("fig14");
}
