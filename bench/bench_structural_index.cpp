// §7.1 setup measurements: structural index size as a fraction of the raw
// file and index construction time vs the loading time of systems that must
// ingest the data (the paper reports JSON index ≈ 21%/15% of file, built ~4x
// faster than MongoDB's load).
#include "bench/bench_common.h"

#include "src/plugins/csv_plugin.h"
#include "src/plugins/json_plugin.h"

namespace proteus {
namespace bench {
namespace {

void Report() {
  const BenchCorpus& c = BenchCorpus::Get();

  // JSON structural index (shuffled field order -> Level 0 retained).
  DatasetInfo ji{.name = "li_json", .format = DataFormat::kJSON,
                 .path = c.dir + "/lineitem.json", .type = datagen::LineitemSchema()};
  JsonPlugin jp(ji);
  double json_build_ms = WallMs([&] {
    Status s = jp.Open();
    if (!s.ok()) std::abort();
  });
  size_t json_file = std::filesystem::file_size(ji.path);

  // Fixed-schema JSON (orders written without shuffling? denorm is ordered).
  DatasetInfo di{.name = "denorm", .format = DataFormat::kJSON,
                 .path = c.dir + "/denorm.json", .type = datagen::OrdersDenormSchema()};
  JsonPlugin dp(di);
  if (!dp.Open().ok()) std::abort();

  // CSV structural index.
  DatasetInfo ci{.name = "li_csv", .format = DataFormat::kCSV,
                 .path = c.dir + "/lineitem.csv", .type = datagen::LineitemSchema()};
  ci.csv.index_stride = 5;  // paper: every 5th field for the Symantec CSV
  CsvPlugin cp(ci);
  double csv_build_ms = WallMs([&] {
    Status s = cp.Open();
    if (!s.ok()) std::abort();
  });
  size_t csv_file = std::filesystem::file_size(ci.path);

  // Loads into the comparison systems.
  baselines::DocStoreEngine doc;
  auto mongo_ms = doc.LoadDocuments("lineitem", c.lineitem);
  baselines::RowStoreEngine row;
  auto pg_ms = row.LoadDocuments("lineitem", c.lineitem);

  printf("-- Structural index statistics (cf. paper §7.1/§7.2 setup) --\n");
  printf("JSON  file %9zu B  index %9zu B (%5.1f%% of file)  built in %8.1f ms%s\n",
         json_file, jp.StructuralIndexBytes(),
         100.0 * jp.StructuralIndexBytes() / json_file, json_build_ms,
         jp.fixed_schema() ? "  [fixed-schema: Level 0 dropped]" : "  [Level 0 retained]");
  printf("JSON  denormalized: index %9zu B, fixed_schema=%d\n", dp.StructuralIndexBytes(),
         dp.fixed_schema() ? 1 : 0);
  printf("CSV   file %9zu B  index %9zu B (%5.1f%% of file)  built in %8.1f ms%s\n",
         csv_file, cp.StructuralIndexBytes(), 100.0 * cp.StructuralIndexBytes() / csv_file,
         csv_build_ms, cp.fixed_width() ? "  [fixed-width fast path]" : "");
  printf("Load  DocStore (BSON)  %8.1f ms   (index build is %.1fx faster)\n", *mongo_ms,
         *mongo_ms / json_build_ms);
  printf("Load  RowStore (jsonb) %8.1f ms\n", *pg_ms);
  printf("Store DocStore BSON bytes: %zu (file: %zu)\n", doc.storage_bytes("lineitem"),
         json_file);
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Report();
  ::benchmark::RunSpecifiedBenchmarks();
  return proteus::bench::WriteBenchReport("structural_index");
}
