// §7 setup claim: "Proteus uses LLVM ... with the compilation time being at
// most ~50 ms per query". This bench measures IR generation + optimization +
// machine-code compilation per query class.
//
// The cold/warm variants measure the compiled-query cache: a fresh engine
// compiles on the first execution of each plan (cold) and must be served
// from the signature-keyed cache on re-execution (warm, compile ~0 ms) —
// the regime of a production engine serving heavy repeated traffic, where
// per-query codegen would otherwise be re-paid on every execution (and once
// per shard before the shared cache). The warm variants abort on a cache
// miss or a zero hit count, so CI can run them as a regression gate.
#include "bench/bench_common.h"

namespace proteus {
namespace bench {
namespace {

/// Engine with the compiled-query cache disabled: this bench measures the
/// per-query codegen cost itself, so every iteration must really compile —
/// the shared Systems engine would serve iteration 2+ from its cache.
QueryEngine& CompileEngine() {
  static QueryEngine* engine = [] {
    EngineOptions opts = BenchEngineOptions();
    opts.jit_cache_capacity = 0;
    auto* e = new QueryEngine(opts);
    RegisterBenchDatasets(e);
    return e;
  }();
  return *engine;
}

double CompileMs(const std::string& q) {
  QueryEngine& e = CompileEngine();
  auto r = e.Execute(q);
  if (!r.ok()) {
    fprintf(stderr, "%s\n", r.status().ToString().c_str());
    std::abort();
  }
  if (!e.telemetry().used_jit) {
    fprintf(stderr, "query fell back to interpreter: %s\n", q.c_str());
  }
  return e.telemetry().compile_ms;
}

/// One cold tiered execution on a fresh engine (empty cache, background
/// compiler on). Aborts if the hot-swap never landed — on the bench corpus
/// the interpreted portion is long enough that a healthy background compile
/// must finish mid-query, so "never swapped" means the tiered path is broken
/// and the numbers would silently measure the plain interpreter.
struct TieredColdRunResult {
  double first_result_ms = 0;  ///< time to the first completed morsel chunk
  double total_ms = 0;         ///< full execution wall time, compile overlapped
};

TieredColdRunResult TieredColdRun(const std::string& q) {
  // Whether the compile lands mid-query is an OS-scheduling race on busy or
  // single-CPU runners; retry a few times so one unlucky interleaving doesn't
  // abort, while a *structurally* broken swap path (never lands on any
  // attempt) still does.
  constexpr int kAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    EngineOptions opts = BenchEngineOptions();
    opts.tiered = true;
    opts.num_threads = 2;
    // Fine morsels: the controller polls the compile at chunk boundaries, so
    // smaller morsels mean more swap opportunities (and a sharper
    // first_result) without changing any result.
    opts.morsel_rows = 1024;
    QueryEngine engine(opts);
    RegisterBenchDatasets(&engine);
    auto r = engine.Execute(q);
    if (!r.ok()) {
      fprintf(stderr, "tiered bench: %s\n  %s\n", q.c_str(), r.status().ToString().c_str());
      std::abort();
    }
    const QueryTelemetry& t = engine.telemetry();
    if (t.jit_cache_hit) {
      fprintf(stderr, "tiered bench: cold run was served warm: %s\n", q.c_str());
      std::abort();
    }
    if (t.morsels_jit == 0) {
      if (attempt < kAttempts) continue;
      fprintf(stderr,
              "tiered bench: background compile never landed in %d attempts, the "
              "hot-swap did not happen (%s): %s\n",
              kAttempts, t.fallback_reason.c_str(), q.c_str());
      std::abort();
    }
    return {t.first_morsel_ms, t.execute_ms};
  }
}

void Register() {
  std::vector<std::pair<std::string, std::string>> queries = {
      {"scan_count", "SELECT count(*) FROM lineitem_bin WHERE l_orderkey < 100"},
      {"scan_aggr4",
       "SELECT count(*), max(l_quantity), sum(l_extendedprice), min(l_discount) FROM "
       "lineitem_json WHERE l_orderkey < 100"},
      {"join",
       "SELECT count(*), max(o.o_totalprice) FROM orders_bin o JOIN lineitem_bin l ON "
       "o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 100"},
      {"groupby",
       "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_bin GROUP BY "
       "l_linenumber"},
      {"unnest",
       "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l WHERE "
       "l.l_quantity > 10.0"},
      {"three_way_join",
       "SELECT count(*) FROM spam_bin b JOIN spam_csv c ON b.mail_id = c.mail_id JOIN "
       "spam_json j ON c.mail_id = j.mail_id WHERE b.spam_score > 0.5"},
  };
  for (const auto& [name, q] : queries) {
    std::string query = q;
    RegisterMs("codegen_cost/" + name, [query] { return CompileMs(query); });
  }

  // Compiled-query cache: first execution vs cached re-execution, on the
  // fig05 (JSON projection/aggregation) and fig11 (JSON group-by) plan
  // shapes. Each cold iteration uses a fresh engine (empty cache); the
  // paired warm variant reports the re-execution's compile cost, which the
  // cache should hold at ~0 ms (the helper aborts on a miss / zero hits).
  std::vector<std::pair<std::string, std::string>> cache_queries = {
      {"fig05_json_projection",
       "SELECT count(*), max(l_quantity), sum(l_extendedprice), min(l_discount) FROM "
       "lineitem_json WHERE l_orderkey < 100"},
      {"fig11_json_groupby",
       "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_json GROUP BY "
       "l_linenumber"},
  };
  for (const auto& [name, q] : cache_queries) {
    std::string query = q;
    RegisterMs("codegen_cache/" + name + "/cold",
               [query] { return CacheColdWarm(query).cold_compile_ms; });
    RegisterMs("codegen_cache/" + name + "/warm",
               [query] { return CacheColdWarm(query).warm_compile_ms; });
    // Tiered cold start on the same plan shapes: the interpreter serves the
    // first morsels while the module compiles in the background, then the
    // query hot-swaps to generated code. first_result is the time to the
    // first completed morsel chunk — the latency the tiered path exists to
    // shrink (compare against codegen_cache/.../cold, which the pure JIT
    // path pays *before* any tuple moves); total is full execution wall
    // time, compile overlapped.
    RegisterMs("tiered/" + name + "/first_result",
               [query] { return TieredColdRun(query).first_result_ms; });
    RegisterMs("tiered/" + name + "/total",
               [query] { return TieredColdRun(query).total_ms; });
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();
  return proteus::bench::WriteBenchReport("codegen_cost");
}
