// §7 setup claim: "Proteus uses LLVM ... with the compilation time being at
// most ~50 ms per query". This bench measures IR generation + optimization +
// machine-code compilation per query class.
#include "bench/bench_common.h"

namespace proteus {
namespace bench {
namespace {

double CompileMs(const std::string& q) {
  auto r = Systems::Get().proteus->Execute(q);
  if (!r.ok()) {
    fprintf(stderr, "%s\n", r.status().ToString().c_str());
    std::abort();
  }
  if (!Systems::Get().proteus->telemetry().used_jit) {
    fprintf(stderr, "query fell back to interpreter: %s\n", q.c_str());
  }
  return Systems::Get().proteus->telemetry().compile_ms;
}

void Register() {
  std::vector<std::pair<std::string, std::string>> queries = {
      {"scan_count", "SELECT count(*) FROM lineitem_bin WHERE l_orderkey < 100"},
      {"scan_aggr4",
       "SELECT count(*), max(l_quantity), sum(l_extendedprice), min(l_discount) FROM "
       "lineitem_json WHERE l_orderkey < 100"},
      {"join",
       "SELECT count(*), max(o.o_totalprice) FROM orders_bin o JOIN lineitem_bin l ON "
       "o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 100"},
      {"groupby",
       "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_bin GROUP BY "
       "l_linenumber"},
      {"unnest",
       "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l WHERE "
       "l.l_quantity > 10.0"},
      {"three_way_join",
       "SELECT count(*) FROM spam_bin b JOIN spam_csv c ON b.mail_id = c.mail_id JOIN "
       "spam_json j ON c.mail_id = j.mail_id WHERE b.spam_score > 0.5"},
  };
  for (const auto& [name, q] : queries) {
    std::string query = q;
    RegisterMs("codegen_cost/" + name, [query] { return CompileMs(query); });
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
