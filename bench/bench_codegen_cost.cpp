// §7 setup claim: "Proteus uses LLVM ... with the compilation time being at
// most ~50 ms per query". This bench measures IR generation + optimization +
// machine-code compilation per query class.
//
// The cold/warm variants measure the compiled-query cache: a fresh engine
// compiles on the first execution of each plan (cold) and must be served
// from the signature-keyed cache on re-execution (warm, compile ~0 ms) —
// the regime of a production engine serving heavy repeated traffic, where
// per-query codegen would otherwise be re-paid on every execution (and once
// per shard before the shared cache). The warm variants abort on a cache
// miss or a zero hit count, so CI can run them as a regression gate.
#include "bench/bench_common.h"

namespace proteus {
namespace bench {
namespace {

/// Engine with the compiled-query cache disabled: this bench measures the
/// per-query codegen cost itself, so every iteration must really compile —
/// the shared Systems engine would serve iteration 2+ from its cache.
QueryEngine& CompileEngine() {
  static QueryEngine* engine = [] {
    EngineOptions opts;
    opts.jit_cache_capacity = 0;
    auto* e = new QueryEngine(opts);
    RegisterBenchDatasets(e);
    return e;
  }();
  return *engine;
}

double CompileMs(const std::string& q) {
  QueryEngine& e = CompileEngine();
  auto r = e.Execute(q);
  if (!r.ok()) {
    fprintf(stderr, "%s\n", r.status().ToString().c_str());
    std::abort();
  }
  if (!e.telemetry().used_jit) {
    fprintf(stderr, "query fell back to interpreter: %s\n", q.c_str());
  }
  return e.telemetry().compile_ms;
}

void Register() {
  std::vector<std::pair<std::string, std::string>> queries = {
      {"scan_count", "SELECT count(*) FROM lineitem_bin WHERE l_orderkey < 100"},
      {"scan_aggr4",
       "SELECT count(*), max(l_quantity), sum(l_extendedprice), min(l_discount) FROM "
       "lineitem_json WHERE l_orderkey < 100"},
      {"join",
       "SELECT count(*), max(o.o_totalprice) FROM orders_bin o JOIN lineitem_bin l ON "
       "o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 100"},
      {"groupby",
       "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_bin GROUP BY "
       "l_linenumber"},
      {"unnest",
       "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l WHERE "
       "l.l_quantity > 10.0"},
      {"three_way_join",
       "SELECT count(*) FROM spam_bin b JOIN spam_csv c ON b.mail_id = c.mail_id JOIN "
       "spam_json j ON c.mail_id = j.mail_id WHERE b.spam_score > 0.5"},
  };
  for (const auto& [name, q] : queries) {
    std::string query = q;
    RegisterMs("codegen_cost/" + name, [query] { return CompileMs(query); });
  }

  // Compiled-query cache: first execution vs cached re-execution, on the
  // fig05 (JSON projection/aggregation) and fig11 (JSON group-by) plan
  // shapes. Each cold iteration uses a fresh engine (empty cache); the
  // paired warm variant reports the re-execution's compile cost, which the
  // cache should hold at ~0 ms (the helper aborts on a miss / zero hits).
  std::vector<std::pair<std::string, std::string>> cache_queries = {
      {"fig05_json_projection",
       "SELECT count(*), max(l_quantity), sum(l_extendedprice), min(l_discount) FROM "
       "lineitem_json WHERE l_orderkey < 100"},
      {"fig11_json_groupby",
       "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem_json GROUP BY "
       "l_linenumber"},
  };
  for (const auto& [name, q] : cache_queries) {
    std::string query = q;
    RegisterMs("codegen_cache/" + name + "/cold",
               [query] { return CacheColdWarm(query).cold_compile_ms; });
    RegisterMs("codegen_cache/" + name + "/warm",
               [query] { return CacheColdWarm(query).warm_compile_ms; });
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
