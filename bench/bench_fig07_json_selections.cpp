// Figure 7: selection queries (1/3/4 predicates, COUNT) over JSON data.
// Systems: Proteus, RowStore (jsonb), DocStore. (MonetDB/DBMS C are excluded
// from JSON experiments past Fig 5, as in the paper.)
#include "bench/bench_common.h"

namespace proteus {
namespace bench {
namespace {

using baselines::BenchQuery;

void Register() {
  struct Variant {
    const char* name;
    std::string extra_sql;  // appended predicates
    std::vector<baselines::BenchPred> extra;
  };
  std::vector<Variant> variants = {
      {"Q1_pred1", "", {}},
      {"Q2_pred3",
       " and l_quantity < 45.0 and l_discount < 0.09",
       {{.col = "l_quantity", .cmp = '<', .val = 45.0},
        {.col = "l_discount", .cmp = '<', .val = 0.09}}},
      {"Q3_pred4",
       " and l_quantity < 45.0 and l_discount < 0.09 and l_tax < 0.07",
       {{.col = "l_quantity", .cmp = '<', .val = 45.0},
        {.col = "l_discount", .cmp = '<', .val = 0.09},
        {.col = "l_tax", .cmp = '<', .val = 0.07}}},
  };
  for (const auto& v : variants) {
    for (int sel : Selectivities()) {
      int64_t key = KeyFor(sel);
      std::string tag = std::string("fig07/") + v.name + "/sel=" + std::to_string(sel) + "/";
      std::string q = "SELECT count(*) FROM lineitem_json WHERE l_orderkey < " +
                      std::to_string(key) + v.extra_sql;
      RegisterMs(tag + "Proteus", [q] { return ProteusMs(q); });

      BenchQuery bq;
      bq.table = "lineitem";
      bq.where = {{.col = "l_orderkey", .cmp = '<', .val = static_cast<double>(key)}};
      bq.where.insert(bq.where.end(), v.extra.begin(), v.extra.end());
      bq.aggs = {{baselines::AggKind::kCount, ""}};
      RegisterMs(tag + "RowStore_jsonb",
                 [bq] { return BaselineMs(Systems::Get().row, bq); });
      RegisterMs(tag + "DocStore_bson",
                 [bq] { return BaselineMs(Systems::Get().doc, bq); });
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();
  return proteus::bench::WriteBenchReport("fig07");
}
