// Figure 12: aggregate (GROUP BY) queries over binary relational data.
// For the count-only query the columnar engine reads the group sizes off its
// hash buckets (the MonetDB optimization the paper describes); with more
// aggregates Proteus wins.
#include "bench/bench_common.h"

namespace proteus {
namespace bench {
namespace {

using baselines::AggKind;
using baselines::BenchQuery;

void Register() {
  struct Variant {
    const char* name;
    const char* proteus_aggs;
    std::vector<baselines::BenchAgg> aggs;
  };
  std::vector<Variant> variants = {
      {"Q1_aggr1", "count(*)", {{AggKind::kCount, ""}}},
      {"Q2_aggr3",
       "count(*), max(l_quantity), sum(l_extendedprice)",
       {{AggKind::kCount, ""},
        {AggKind::kMax, "l_quantity"},
        {AggKind::kSum, "l_extendedprice"}}},
      {"Q3_aggr4",
       "count(*), max(l_quantity), sum(l_extendedprice), min(l_discount)",
       {{AggKind::kCount, ""},
        {AggKind::kMax, "l_quantity"},
        {AggKind::kSum, "l_extendedprice"},
        {AggKind::kMin, "l_discount"}}},
  };
  for (const auto& v : variants) {
    for (int sel : Selectivities()) {
      int64_t key = KeyFor(sel);
      std::string tag = std::string("fig12/") + v.name + "/sel=" + std::to_string(sel) + "/";
      std::string q = std::string("SELECT l_linenumber, ") + v.proteus_aggs +
                      " FROM lineitem_bin WHERE l_orderkey < " + std::to_string(key) +
                      " GROUP BY l_linenumber";
      RegisterMs(tag + "Proteus", [q] { return ProteusMs(q); });

      BenchQuery bq;
      bq.table = "lineitem";
      bq.where = {{.col = "l_orderkey", .cmp = '<', .val = static_cast<double>(key)}};
      bq.aggs = v.aggs;
      bq.group_by = "l_linenumber";
      RegisterMs(tag + "RowStore", [bq] { return BaselineMs(Systems::Get().row, bq); });
      RegisterMs(tag + "Columnar", [bq] { return BaselineMs(Systems::Get().col, bq); });
      RegisterMs(tag + "Columnar_sorted",
                 [bq] { return BaselineMs(Systems::Get().col_sorted, bq); });
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();
  return proteus::bench::WriteBenchReport("fig12");
}
