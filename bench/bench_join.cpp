// Partitioned-join benchmark: build/probe split timings of the two
// RadixTable layouts over uniform vs Zipf-skewed key corpora, plus
// end-to-end join queries through the parallel generated engine with the
// join strategy forced shared, forced partitioned, and left to the
// optimizer.
//
// Two layers, one report (BENCH_join.json):
//   join/build|probe/<corpus>/<layout>        — RadixTable micro timings:
//     the build split (insert + cluster + bucket chaining) and the probe
//     split measured separately, so layout effects are attributable to a
//     phase instead of smeared over a whole query.
//   join/query/<corpus>/<strategy>/threads=N  — full queries over JSON
//     corpora at bench scale; telemetry (join_strategy included) lands in
//     the JSON next to each variant.
//
// The zipf/auto variant doubles as the strategy guard CI runs in Release:
// the optimizer must pick the partitioned layout for the skewed build and
// the plan must run as parallel generated code — a silent shared-table or
// interpreter run aborts the binary (same spirit as JitThreadedMs).
//
// On single-CPU hosts wall time cannot separate the layouts (both walk the
// same chains serially); the per-phase split and the telemetry are the
// evidence that matters there.
#include <random>

#include "bench/bench_common.h"
#include "src/engine/radix_table.h"

namespace proteus {
namespace bench {
namespace {

// ---------------------------------------------------------------------------
// Key corpora: hashes mirror the engine (Value::Int().Hash()), so micro
// bucket occupancy matches what a real build sees.
// ---------------------------------------------------------------------------

constexpr size_t kMicroBuild = 1u << 17;
constexpr size_t kMicroProbe = 1u << 18;

/// Inverse-CDF Zipf(1.0) sampler over [1, domain].
class ZipfGen {
 public:
  ZipfGen(int64_t domain, uint64_t seed) : rng_(seed), cdf_(domain) {
    double sum = 0;
    for (int64_t k = 0; k < domain; ++k) cdf_[k] = (sum += 1.0 / static_cast<double>(k + 1));
    dist_ = std::uniform_real_distribution<double>(0.0, sum);
  }
  int64_t operator()() {
    double x = dist_(rng_);
    return 1 + (std::lower_bound(cdf_.begin(), cdf_.end(), x) - cdf_.begin());
  }

 private:
  std::mt19937_64 rng_;
  std::vector<double> cdf_;
  std::uniform_real_distribution<double> dist_;
};

struct MicroCorpus {
  std::string name;
  std::vector<uint64_t> build_hashes;
  std::vector<uint64_t> probe_hashes;
};

const std::vector<MicroCorpus>& MicroCorpora() {
  static const std::vector<MicroCorpus> corpora = [] {
    std::vector<MicroCorpus> out;
    {
      MicroCorpus c;
      c.name = "uniform";
      std::mt19937_64 rng(11);
      std::uniform_int_distribution<int64_t> key(1, static_cast<int64_t>(kMicroBuild) * 4);
      for (size_t i = 0; i < kMicroBuild; ++i)
        c.build_hashes.push_back(Value::Int(key(rng)).Hash());
      for (size_t i = 0; i < kMicroProbe; ++i)
        c.probe_hashes.push_back(Value::Int(key(rng)).Hash());
      out.push_back(std::move(c));
    }
    {
      // Skewed: Zipf over a domain 16x smaller than the row count — heavy
      // duplication concentrated in a few radix partitions, the shape the
      // partitioned layout exists for.
      MicroCorpus c;
      c.name = "zipf";
      ZipfGen zipf(static_cast<int64_t>(kMicroBuild) / 16, 12);
      for (size_t i = 0; i < kMicroBuild; ++i)
        c.build_hashes.push_back(Value::Int(zipf()).Hash());
      for (size_t i = 0; i < kMicroProbe; ++i)
        c.probe_hashes.push_back(Value::Int(zipf()).Hash());
      out.push_back(std::move(c));
    }
    return out;
  }();
  return corpora;
}

double BuildMs(const MicroCorpus& c, bool partitioned) {
  return WallMs([&] {
    RadixTable t;
    t.set_partitioned(partitioned);
    t.Reserve(c.build_hashes.size());
    for (size_t i = 0; i < c.build_hashes.size(); ++i)
      t.Insert(c.build_hashes[i], static_cast<uint32_t>(i));
    t.Build();
    benchmark::DoNotOptimize(t.bytes());
  });
}

/// One prebuilt table per (corpus, layout) so probe timings exclude build.
const RadixTable& ProbeTable(const MicroCorpus& c, bool partitioned) {
  static std::map<std::string, std::unique_ptr<RadixTable>> tables;
  std::string key = c.name + (partitioned ? "/p" : "/s");
  auto it = tables.find(key);
  if (it == tables.end()) {
    auto t = std::make_unique<RadixTable>();
    t->set_partitioned(partitioned);
    t->Reserve(c.build_hashes.size());
    for (size_t i = 0; i < c.build_hashes.size(); ++i)
      t->Insert(c.build_hashes[i], static_cast<uint32_t>(i));
    t->Build();
    it = tables.emplace(key, std::move(t)).first;
  }
  return *it->second;
}

double ProbeMs(const MicroCorpus& c, bool partitioned) {
  const RadixTable& t = ProbeTable(c, partitioned);
  return WallMs([&] {
    uint64_t matches = 0;
    for (uint64_t h : c.probe_hashes) {
      t.Probe(h, [&](uint32_t) { ++matches; });
    }
    benchmark::DoNotOptimize(matches);
  });
}

// ---------------------------------------------------------------------------
// End-to-end: JSON corpora at bench scale, strategy forced vs auto.
// ---------------------------------------------------------------------------

/// Skewed/uniform join corpora on disk (orders = build side, 1/3 the probe
/// rows, so join reorder keeps it the build across strategies).
struct JoinCorpus {
  std::string dir;
  uint64_t build_rows;

  static const JoinCorpus& Get() {
    static JoinCorpus c = Build();
    return c;
  }

 private:
  static JoinCorpus Build() {
    JoinCorpus c;
    c.build_rows = std::max<uint64_t>(8192, BenchOrders());
    const uint64_t probe_rows = c.build_rows * 3;
    const int64_t zipf_domain = static_cast<int64_t>(c.build_rows / 16);
    const int64_t uni_domain = static_cast<int64_t>(c.build_rows) * 4;
    c.dir = "/tmp/proteus_bench_join_" + std::to_string(c.build_rows);
    std::string stamp = c.dir + "/.complete";
    if (std::filesystem::exists(stamp)) return c;
    std::filesystem::create_directories(c.dir);
    auto orders = [](std::ofstream& f, int64_t key, uint64_t i) {
      f << "{\"o_orderkey\":" << key << ",\"o_custkey\":" << i % 13
        << ",\"o_totalprice\":" << 100.25 + static_cast<double>(i % 97)
        << ",\"o_shippriority\":" << i % 3 << ",\"o_comment\":\"bench\"}\n";
    };
    auto lineitem = [](std::ofstream& f, int64_t key, uint64_t i) {
      f << "{\"l_orderkey\":" << key << ",\"l_linenumber\":" << i % 7
        << ",\"l_quantity\":" << 1.5 + static_cast<double>(i % 49)
        << ",\"l_extendedprice\":" << 900.75 + static_cast<double>(i % 5003)
        << ",\"l_discount\":0.04,\"l_tax\":0.03,\"l_shipmode\":\"TRUCK\","
           "\"l_comment\":\"bench\"}\n";
    };
    {
      ZipfGen zipf(zipf_domain, 21);
      std::ofstream f(c.dir + "/zipf_orders.json");
      for (uint64_t i = 0; i < c.build_rows; ++i) orders(f, zipf(), i);
    }
    {
      std::mt19937_64 rng(22);
      std::uniform_int_distribution<int64_t> key(1, uni_domain);
      std::ofstream f(c.dir + "/uni_orders.json");
      for (uint64_t i = 0; i < c.build_rows; ++i) orders(f, key(rng), i);
    }
    {
      std::mt19937_64 rng(23);
      std::uniform_int_distribution<int64_t> key(1, zipf_domain);
      std::ofstream f(c.dir + "/zipf_probe.json");
      for (uint64_t i = 0; i < probe_rows; ++i) lineitem(f, key(rng), i);
    }
    {
      std::mt19937_64 rng(24);
      std::uniform_int_distribution<int64_t> key(1, uni_domain);
      std::ofstream f(c.dir + "/uni_probe.json");
      for (uint64_t i = 0; i < probe_rows; ++i) lineitem(f, key(rng), i);
    }
    std::ofstream(stamp) << "ok";
    return c;
  }
};

const char* StrategyName(JoinStrategyOverride s) {
  switch (s) {
    case JoinStrategyOverride::kForceShared: return "shared";
    case JoinStrategyOverride::kForcePartitioned: return "partitioned";
    case JoinStrategyOverride::kAuto: return "auto";
  }
  return "?";
}

/// Parallel JIT engine per (strategy, threads) over the join corpora. The
/// constructor runs one scan per dataset so plugin stats (cardinality, ndv)
/// are warm before any measured query — the auto variants must exercise the
/// optimizer's real decision, not the cold-stats fallback.
QueryEngine& JoinEngine(JoinStrategyOverride strat, int threads) {
  static std::map<std::string, std::unique_ptr<QueryEngine>> engines;
  std::string key = std::string(StrategyName(strat)) + "/" + std::to_string(threads);
  auto it = engines.find(key);
  if (it == engines.end()) {
    const JoinCorpus& c = JoinCorpus::Get();
    EngineOptions opts = BenchEngineOptions();
    opts.mode = ExecMode::kJIT;
    opts.num_threads = threads;
    opts.optimizer.join_strategy = strat;
    auto e = std::make_unique<QueryEngine>(opts);
    auto reg = [&](const char* name, const std::string& file, TypePtr type) {
      Status s = e->RegisterDataset({.name = name,
                                     .format = DataFormat::kJSON,
                                     .path = c.dir + "/" + file,
                                     .type = std::move(type)});
      if (!s.ok()) {
        fprintf(stderr, "bench_join register %s: %s\n", name, s.ToString().c_str());
        std::abort();
      }
      auto warm = e->Execute(std::string("SELECT count(*) FROM ") + name);
      if (!warm.ok()) {
        fprintf(stderr, "bench_join warm %s: %s\n", name, warm.status().ToString().c_str());
        std::abort();
      }
    };
    reg("zipf_orders", "zipf_orders.json", datagen::OrdersSchema());
    reg("uni_orders", "uni_orders.json", datagen::OrdersSchema());
    reg("zipf_probe", "zipf_probe.json", datagen::LineitemSchema());
    reg("uni_probe", "uni_probe.json", datagen::LineitemSchema());
    it = engines.emplace(key, std::move(e)).first;
  }
  return *it->second;
}

double JoinQueryMs(const std::string& corpus, JoinStrategyOverride strat, int threads) {
  QueryEngine& e = JoinEngine(strat, threads);
  std::string q = "SELECT count(*), sum(o.o_totalprice), max(l.l_extendedprice) FROM " +
                  corpus + "_orders o JOIN " + corpus +
                  "_probe l ON o.o_orderkey = l.l_orderkey";
  auto r = e.Execute(q);
  if (!r.ok()) {
    fprintf(stderr, "bench_join [%s/%s]: %s\n", corpus.c_str(), StrategyName(strat),
            r.status().ToString().c_str());
    std::abort();
  }
  const QueryTelemetry& t = e.telemetry();
  if (!t.used_jit || !t.jit_parallel) {
    fprintf(stderr, "bench_join [%s/%s] fell back to the interpreter: %s\n",
            corpus.c_str(), StrategyName(strat), t.fallback_reason.c_str());
    std::abort();
  }
  // Strategy guard: the skewed build under kAuto must select the
  // partitioned layout — a shared-table run here means the stats →
  // optimizer → telemetry chain regressed.
  if (corpus == "zipf" && strat == JoinStrategyOverride::kAuto &&
      t.join_strategy.find("partitioned") == std::string::npos) {
    fprintf(stderr,
            "bench_join [zipf/auto] ran the shared-table layout "
            "(join_strategy=\"%s\")\n",
            t.join_strategy.c_str());
    std::abort();
  }
  BenchReport::Get().AttachTelemetry(t);
  return t.execute_ms;
}

void Register() {
  for (const MicroCorpus& c : MicroCorpora()) {
    for (bool partitioned : {false, true}) {
      const char* layout = partitioned ? "partitioned" : "shared";
      RegisterMs("join/build/" + c.name + "/" + layout,
                 [&c, partitioned] { return BuildMs(c, partitioned); });
      RegisterMs("join/probe/" + c.name + "/" + layout,
                 [&c, partitioned] { return ProbeMs(c, partitioned); });
    }
  }
  for (const char* corpus : {"uniform", "zipf"}) {
    std::string ds = std::string(corpus) == "zipf" ? "zipf" : "uni";
    for (JoinStrategyOverride strat :
         {JoinStrategyOverride::kForceShared, JoinStrategyOverride::kForcePartitioned,
          JoinStrategyOverride::kAuto}) {
      for (int threads : {1, 4}) {
        RegisterMs("join/query/" + std::string(corpus) + "/" + StrategyName(strat) +
                       "/threads=" + std::to_string(threads),
                   [ds, strat, threads] { return JoinQueryMs(ds, strat, threads); });
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();
  return proteus::bench::WriteBenchReport("join");
}
