// Shared benchmark harness.
//
// Every figure/table of the paper's evaluation (§7) has one binary in this
// directory. Benchmarks report *execution* time via manual timing
// (QueryTelemetry::execute_ms for Proteus, wall time for baselines), matching
// the paper's presentation where LLVM compilation (≤~50 ms) is reported
// separately (see bench_codegen_cost).
//
// Scale: PROTEUS_BENCH_ORDERS environment variable (default 20000 orders ≈
// 80k lineitems). The paper runs SF10/SF100; shapes — who wins, by what
// factor, where crossovers fall — are what we reproduce, not absolute times.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/core/query_engine.h"
#include "src/datagen/spam.h"
#include "src/datagen/tpch.h"
#include "src/obs/metrics.h"
#include "src/storage/bincol_format.h"
#include "src/storage/binrow_format.h"
#include "src/storage/text_writers.h"

namespace proteus {
namespace bench {

inline uint64_t BenchOrders() {
  const char* env = std::getenv("PROTEUS_BENCH_ORDERS");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 20000;
}
inline uint64_t BenchMails() {
  // Large enough that per-query scan work dominates the ~10 ms of LLVM
  // compilation (the paper's regime: seconds-long queries, ≤50 ms codegen).
  const char* env = std::getenv("PROTEUS_BENCH_MAILS");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 60000;
}

inline double WallMs(const std::function<void()>& f) {
  auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Engine options every bench engine is built with: default execution knobs
/// plus the process-wide metrics registry, so each measured execution also
/// feeds the proteus_* counters/histograms that land in BENCH_<fig>.json.
inline EngineOptions BenchEngineOptions() {
  EngineOptions opts;
  opts.metrics = &obs::MetricsRegistry::Global();
  return opts;
}

/// Collects every measured sample of every variant and writes the
/// BENCH_<fig>.json trajectory file at process exit (see WriteBenchReport).
///
/// Flow: RegisterMs() records each iteration's milliseconds under the
/// variant's benchmark name; the Proteus helpers (ProteusMs & co.) attach
/// the engine's QueryTelemetry to a pending slot that the *next* Record()
/// call consumes — the helper runs inside the timed fn(), so attach always
/// happens before its own Record. Baseline variants never attach, so their
/// telemetry is null in the JSON: same reporter, same schema, one file.
class BenchReport {
 public:
  static BenchReport& Get() {
    static BenchReport r;
    return r;
  }

  void AttachTelemetry(const QueryTelemetry& t) {
    std::lock_guard<std::mutex> lk(mu_);
    pending_ = t;
  }

  void Record(const std::string& name, double ms) {
    std::lock_guard<std::mutex> lk(mu_);
    Variant& v = variants_[name];
    if (v.samples.empty()) order_.push_back(name);
    v.samples.push_back(ms);
    if (pending_.has_value()) {
      v.telemetry = std::move(pending_);
      pending_.reset();
    }
  }

  /// True when no variant recorded a sample (e.g. --benchmark_list_tests).
  bool empty() {
    std::lock_guard<std::mutex> lk(mu_);
    return order_.empty();
  }

  /// Writes BENCH_<fig>.json (schema_version 1) into $PROTEUS_BENCH_JSON_DIR
  /// (default: cwd). Returns false on I/O failure or when nothing was
  /// recorded (e.g. --benchmark_list_tests runs).
  bool WriteJson(const std::string& fig) {
    std::lock_guard<std::mutex> lk(mu_);
    if (order_.empty()) return false;
    const char* env = std::getenv("PROTEUS_BENCH_JSON_DIR");
    std::string path = (env != nullptr ? std::string(env) : std::string(".")) +
                       "/BENCH_" + fig + ".json";
    std::ostringstream o;
    o << "{\"schema_version\":1,\"fig\":\"" << fig << "\",";
    o << "\"scale\":{\"orders\":" << BenchOrders() << ",\"mails\":" << BenchMails()
      << "},";
    o << "\"variants\":[";
    for (size_t i = 0; i < order_.size(); ++i) {
      const Variant& v = variants_[order_[i]];
      if (i != 0) o << ",";
      o << "{\"name\":\"" << order_[i] << "\",\"samples\":[";
      double sum = 0;
      for (size_t s = 0; s < v.samples.size(); ++s) {
        if (s != 0) o << ",";
        o << Num(v.samples[s]);
        sum += v.samples[s];
      }
      o << "],\"ms\":" << Num(sum / v.samples.size()) << ",\"telemetry\":";
      if (v.telemetry.has_value()) {
        WriteTelemetry(o, *v.telemetry);
      } else {
        o << "null";
      }
      o << "}";
    }
    o << "],\"metrics\":";
    obs::MetricsRegistry::Global().WriteJson(o);
    o << "}\n";
    std::ofstream f(path);
    f << o.str();
    if (!f.good()) {
      fprintf(stderr, "bench report: cannot write %s\n", path.c_str());
      return false;
    }
    fprintf(stderr, "bench report: wrote %s (%zu variants)\n", path.c_str(),
            order_.size());
    return true;
  }

 private:
  struct Variant {
    std::vector<double> samples;
    std::optional<QueryTelemetry> telemetry;  ///< last measured run's telemetry
  };

  static std::string Num(double v) {
    if (!(v == v) || v > 1e300 || v < -1e300) return "0";
    char buf[32];
    snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  static void WriteTelemetry(std::ostream& o, const QueryTelemetry& t) {
    auto b = [](bool v) { return v ? "true" : "false"; };
    o << "{\"execute_ms\":" << Num(t.execute_ms)
      << ",\"optimize_ms\":" << Num(t.optimize_ms)
      << ",\"jit_compile_ms\":" << Num(t.jit_compile_ms)
      << ",\"used_jit\":" << b(t.used_jit) << ",\"jit_parallel\":" << b(t.jit_parallel)
      << ",\"jit_cache_hit\":" << b(t.jit_cache_hit)
      << ",\"threads_used\":" << t.threads_used << ",\"morsels\":" << t.morsels
      << ",\"shards_used\":" << t.shards_used
      << ",\"bytes_exchanged\":" << t.bytes_exchanged
      << ",\"compile_tier\":" << t.compile_tier
      << ",\"morsels_interpreted\":" << t.morsels_interpreted
      << ",\"morsels_jit\":" << t.morsels_jit << ",\"tasks_dealt\":" << t.tasks_dealt
      << ",\"steals\":" << t.steals << ",\"join_strategy\":\"" << t.join_strategy
      << "\"}";
  }

  std::mutex mu_;
  std::map<std::string, Variant> variants_;
  std::vector<std::string> order_;  ///< registration order, for stable output
  std::optional<QueryTelemetry> pending_;
};

/// Tail call for every bench main(): writes BENCH_<fig>.json and returns the
/// process exit code (0 on success; also 0 when nothing ran, so list/filter
/// invocations stay clean — only an actual write failure is fatal).
inline int WriteBenchReport(const std::string& fig) {
  BenchReport& r = BenchReport::Get();
  if (r.empty()) return 0;
  return r.WriteJson(fig) ? 0 : 1;
}

/// On-disk corpus shared by all bench binaries (rebuilt when scale changes).
class BenchCorpus {
 public:
  static BenchCorpus& Get() {
    static BenchCorpus c;
    return c;
  }

  std::string dir;
  RowTable lineitem, orders, denorm;
  RowTable spam_json, spam_csv, spam_bin;
  uint64_t num_orders;

 private:
  BenchCorpus() {
    num_orders = BenchOrders();
    dir = "/tmp/proteus_bench_" + std::to_string(num_orders) + "_" +
          std::to_string(BenchMails());
    lineitem = datagen::GenLineitem(num_orders, 1001);
    orders = datagen::GenOrders(num_orders, 1002);
    denorm = datagen::Denormalize(orders, lineitem);
    spam_json = datagen::GenSpamJSON(BenchMails(), 1003);
    spam_csv = datagen::GenSpamCSV(BenchMails(), 1004);
    spam_bin = datagen::GenSpamBinary(BenchMails(), 1.5, 1005);

    std::string stamp = dir + "/.complete";
    if (std::filesystem::exists(stamp)) return;
    std::filesystem::create_directories(dir);
    auto die = [](const Status& s) {
      if (!s.ok()) {
        fprintf(stderr, "corpus: %s\n", s.ToString().c_str());
        std::abort();
      }
    };
    die(WriteBinaryColumnDir(dir + "/lineitem.bincol", lineitem));
    die(WriteBinaryColumnDir(dir + "/orders.bincol", orders));
    die(WriteBinaryRowFile(dir + "/lineitem.binrow", lineitem));
    die(WriteCSVFile(dir + "/lineitem.csv", lineitem));
    JSONWriteOptions shuffled;
    shuffled.shuffle_field_order = true;  // paper: arbitrary field order
    die(WriteJSONFile(dir + "/lineitem.json", lineitem, shuffled));
    die(WriteJSONFile(dir + "/orders.json", orders, shuffled));
    die(WriteJSONFile(dir + "/denorm.json", denorm));
    die(WriteJSONFile(dir + "/spam.json", spam_json, shuffled));
    die(WriteCSVFile(dir + "/spam.csv", spam_csv));
    die(WriteBinaryColumnDir(dir + "/spam.bincol", spam_bin));
    std::ofstream(stamp) << "ok";
  }
};

/// Registers the benchmark datasets on a Proteus engine.
inline void RegisterBenchDatasets(QueryEngine* e) {
  const BenchCorpus& c = BenchCorpus::Get();
  auto reg = [&](const char* name, DataFormat f, const std::string& path, TypePtr type) {
    Status s = e->RegisterDataset({.name = name, .format = f, .path = path, .type = type});
    if (!s.ok()) {
      fprintf(stderr, "register %s: %s\n", name, s.ToString().c_str());
      std::abort();
    }
  };
  reg("lineitem_bin", DataFormat::kBinaryColumn, c.dir + "/lineitem.bincol",
      datagen::LineitemSchema());
  reg("orders_bin", DataFormat::kBinaryColumn, c.dir + "/orders.bincol",
      datagen::OrdersSchema());
  reg("lineitem_csv", DataFormat::kCSV, c.dir + "/lineitem.csv", datagen::LineitemSchema());
  reg("lineitem_json", DataFormat::kJSON, c.dir + "/lineitem.json",
      datagen::LineitemSchema());
  reg("orders_json", DataFormat::kJSON, c.dir + "/orders.json", datagen::OrdersSchema());
  reg("orders_denorm", DataFormat::kJSON, c.dir + "/denorm.json",
      datagen::OrdersDenormSchema());
  reg("spam_json", DataFormat::kJSON, c.dir + "/spam.json", datagen::SpamJSONSchema());
  reg("spam_csv", DataFormat::kCSV, c.dir + "/spam.csv", datagen::SpamCSVSchema());
  reg("spam_bin", DataFormat::kBinaryColumn, c.dir + "/spam.bincol",
      datagen::SpamBinarySchema());
}

/// Lazily-built shared engine set for the figure benchmarks.
struct Systems {
  std::unique_ptr<QueryEngine> proteus;
  baselines::RowStoreEngine row;       // PostgreSQL / DBMS X proxy
  baselines::ColumnarEngine col;       // MonetDB proxy
  baselines::ColumnarEngine col_sorted;  // DBMS C proxy (sorted on l_orderkey)
  baselines::DocStoreEngine doc;       // MongoDB proxy

  static Systems& Get() {
    static Systems s;
    return s;
  }

 private:
  Systems() {
    const BenchCorpus& c = BenchCorpus::Get();
    proteus = std::make_unique<QueryEngine>(BenchEngineOptions());
    RegisterBenchDatasets(proteus.get());
    auto die = [](const Result<double>& r) {
      if (!r.ok()) {
        fprintf(stderr, "%s\n", r.status().ToString().c_str());
        std::abort();
      }
    };
    die(row.LoadTable("lineitem", c.lineitem));
    die(row.LoadTable("orders", c.orders));
    die(row.LoadDocuments("denorm", c.denorm));
    die(col.LoadTable("lineitem", c.lineitem));
    die(col.LoadTable("orders", c.orders));
    die(col.LoadJSONAsVarchar("lineitem_varchar", c.lineitem));
    die(col.LoadJSONAsVarchar("orders_varchar", c.orders));
    baselines::ColumnarOptions sorted{.sort_key = "l_orderkey"};
    die(col_sorted.LoadTable("lineitem", c.lineitem, sorted));
    die(col_sorted.LoadTable("orders", c.orders,
                             baselines::ColumnarOptions{.sort_key = "o_orderkey"}));
    die(doc.LoadDocuments("lineitem", c.lineitem));
    die(doc.LoadDocuments("orders", c.orders));
    die(doc.LoadDocuments("denorm", c.denorm));
  }
};

/// Thread counts exercised by the morsel-parallel scaling variants.
inline const std::vector<int>& ThreadCounts() {
  static std::vector<int> t{1, 2, 4};
  return t;
}

/// Engine running the morsel-parallel interpreter at a fixed worker count
/// (interpreter mode for every count, so scaling numbers compare
/// like-for-like; results are identical across counts by construction).
inline QueryEngine& ThreadedEngine(int threads) {
  static std::map<int, std::unique_ptr<QueryEngine>> engines;
  auto it = engines.find(threads);
  if (it == engines.end()) {
    EngineOptions opts = BenchEngineOptions();
    opts.mode = ExecMode::kInterp;
    opts.num_threads = threads;
    auto e = std::make_unique<QueryEngine>(opts);
    RegisterBenchDatasets(e.get());
    it = engines.emplace(threads, std::move(e)).first;
  }
  return *it->second;
}

/// Runs one query on the `threads`-worker engine, returns execution ms.
inline double ThreadedMs(int threads, const std::string& query) {
  QueryEngine& e = ThreadedEngine(threads);
  auto r = e.Execute(query);
  if (!r.ok()) {
    fprintf(stderr, "proteus[%d threads]: %s\n  %s\n", threads, query.c_str(),
            r.status().ToString().c_str());
    std::abort();
  }
  BenchReport::Get().AttachTelemetry(e.telemetry());
  return e.telemetry().execute_ms;
}

/// Engine running morsel-parallel *generated* pipelines at a fixed worker
/// count (mode = kJIT: the range-parameterized pipeline functions fan out
/// over the scheduler). Compare against ThreadedEngine to read the
/// codegen-vs-interpretation gap at each worker count; results are
/// cell-identical across counts and engines by construction.
inline QueryEngine& JitThreadedEngine(int threads) {
  static std::map<int, std::unique_ptr<QueryEngine>> engines;
  auto it = engines.find(threads);
  if (it == engines.end()) {
    EngineOptions opts = BenchEngineOptions();
    opts.mode = ExecMode::kJIT;
    opts.num_threads = threads;
    auto e = std::make_unique<QueryEngine>(opts);
    RegisterBenchDatasets(e.get());
    it = engines.emplace(threads, std::move(e)).first;
  }
  return *it->second;
}

/// Runs one query through the parallel JIT engine, returns execution ms
/// (excludes compile). Aborts if the plan fell back to the interpreter —
/// a jit-parallel bench variant that silently measured the interpreter
/// would be the exact reporting bug the telemetry work closed.
inline double JitThreadedMs(int threads, const std::string& query) {
  QueryEngine& e = JitThreadedEngine(threads);
  auto r = e.Execute(query);
  if (!r.ok()) {
    fprintf(stderr, "proteus jit[%d threads]: %s\n  %s\n", threads, query.c_str(),
            r.status().ToString().c_str());
    std::abort();
  }
  if (!e.telemetry().jit_parallel) {
    fprintf(stderr, "proteus jit[%d threads] fell back to the interpreter: %s\n  %s\n",
            threads, query.c_str(), e.telemetry().fallback_reason.c_str());
    std::abort();
  }
  BenchReport::Get().AttachTelemetry(e.telemetry());
  return e.telemetry().execute_ms;
}

/// Shard counts exercised by the partitioned scale-out variants.
inline const std::vector<int>& ShardCounts() {
  static std::vector<int> s{1, 2, 4};
  return s;
}

/// Engine running the shard coordinator at a fixed shard count with one
/// morsel worker per shard, so the shard dimension is isolated from the
/// thread dimension (results are identical across counts by construction;
/// partials cross the serialized PartialResult wire format).
inline QueryEngine& ShardedEngine(int shards) {
  static std::map<int, std::unique_ptr<QueryEngine>> engines;
  auto it = engines.find(shards);
  if (it == engines.end()) {
    EngineOptions opts = BenchEngineOptions();
    opts.mode = ExecMode::kInterp;
    opts.num_threads = 1;
    opts.num_shards = shards;
    auto e = std::make_unique<QueryEngine>(opts);
    RegisterBenchDatasets(e.get());
    it = engines.emplace(shards, std::move(e)).first;
  }
  return *it->second;
}

/// Runs one query on the `shards`-shard engine, returns execution ms.
inline double ShardedMs(int shards, const std::string& query) {
  QueryEngine& e = ShardedEngine(shards);
  auto r = e.Execute(query);
  if (!r.ok()) {
    fprintf(stderr, "proteus[%d shards]: %s\n  %s\n", shards, query.c_str(),
            r.status().ToString().c_str());
    std::abort();
  }
  BenchReport::Get().AttachTelemetry(e.telemetry());
  return e.telemetry().execute_ms;
}

/// Cold-vs-warm compiled-query-cache measurement: executes `query` twice on
/// a fresh JIT engine and reports the compile cost of each run. The cold run
/// compiles (jit_compile_ms > 0, cache miss); the warm run must be served by
/// the compiled-query cache (jit_cache_hit, jit_compile_ms ~ 0) — the bench
/// aborts if it is not, so a cache regression fails loudly instead of
/// silently re-paying compile cost. `warm_runs` extra executions let callers
/// amortize noise; the hit is asserted on every one.
struct ColdWarmCompile {
  double cold_compile_ms = 0;  ///< first execution: IR gen + LLVM compile
  double warm_compile_ms = 0;  ///< cached re-execution (should be ~0)
  uint64_t hits = 0;           ///< cache hits observed (== warm_runs)
  uint64_t compiles = 0;       ///< compiles observed (== 1)
};

inline ColdWarmCompile CacheColdWarm(const std::string& query, int warm_runs = 1) {
  QueryEngine engine(BenchEngineOptions());  // fresh: its query cache starts empty
  RegisterBenchDatasets(&engine);
  auto run = [&]() -> const QueryTelemetry& {
    auto r = engine.Execute(query);
    if (!r.ok()) {
      fprintf(stderr, "proteus cache bench: %s\n  %s\n", query.c_str(),
              r.status().ToString().c_str());
      std::abort();
    }
    return engine.telemetry();
  };
  ColdWarmCompile out;
  const QueryTelemetry& cold = run();
  if (!cold.used_jit || cold.jit_cache_hit) {
    fprintf(stderr, "cache bench: cold run expected a JIT compile: %s\n", query.c_str());
    std::abort();
  }
  out.cold_compile_ms = cold.jit_compile_ms;
  for (int i = 0; i < warm_runs; ++i) {
    const QueryTelemetry& warm = run();
    if (!warm.jit_cache_hit) {
      fprintf(stderr, "cache bench: warm run missed the compiled-query cache: %s\n",
              query.c_str());
      std::abort();
    }
    out.warm_compile_ms += warm.jit_compile_ms;
  }
  out.warm_compile_ms /= warm_runs;
  const auto stats = engine.jit_cache()->stats();
  out.hits = stats.hits;
  out.compiles = stats.compiles;
  if (out.hits == 0) {
    fprintf(stderr, "cache bench: zero cache hits recorded: %s\n", query.c_str());
    std::abort();
  }
  return out;
}

/// Runs one Proteus query and returns execution ms (excludes compile).
inline double ProteusMs(const std::string& query) {
  auto r = Systems::Get().proteus->Execute(query);
  if (!r.ok()) {
    fprintf(stderr, "proteus: %s\n  %s\n", query.c_str(), r.status().ToString().c_str());
    std::abort();
  }
  BenchReport::Get().AttachTelemetry(Systems::Get().proteus->telemetry());
  return Systems::Get().proteus->telemetry().execute_ms;
}

template <typename Engine>
double BaselineMs(Engine& engine, const baselines::BenchQuery& q) {
  double ms = WallMs([&] {
    auto r = engine.Execute(q);
    if (!r.ok()) {
      fprintf(stderr, "baseline: %s\n", r.status().ToString().c_str());
      std::abort();
    }
    benchmark::DoNotOptimize(r->rows);
  });
  return ms;
}

/// Registers a manual-timed benchmark that reports `fn()` milliseconds.
/// Every iteration's measurement also lands in the BenchReport under the
/// benchmark's name — Proteus and baseline variants alike — so the
/// BENCH_<fig>.json trajectory file sees exactly what the console does.
inline void RegisterMs(const std::string& name, std::function<double()> fn) {
  benchmark::RegisterBenchmark(name.c_str(), [name, fn](benchmark::State& state) {
    for (auto _ : state) {
      double ms = fn();
      BenchReport::Get().Record(name, ms);
      state.SetIterationTime(ms / 1000.0);
    }
  })->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(2);
}

/// Selectivity percents used throughout the paper's figures.
inline const std::vector<int>& Selectivities() {
  static std::vector<int> s{10, 20, 50, 100};
  return s;
}

/// l_orderkey threshold for a selectivity percent.
inline int64_t KeyFor(int sel_percent) {
  return static_cast<int64_t>(BenchCorpus::Get().num_orders) * sel_percent / 100;
}

}  // namespace bench
}  // namespace proteus
