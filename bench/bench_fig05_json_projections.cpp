// Figure 5: projection-intensive queries over JSON data.
// Template: SELECT AGG(val1),...,AGG(valN) FROM lineitem WHERE l_orderkey < X
// Variants: COUNT / 1 aggregate (MAX) / 4 aggregates; selectivity 10-100%.
// Systems: Proteus (raw JSON + structural index), RowStore (jsonb-like,
// ≈PostgreSQL), DocStore (BSON-like, ≈MongoDB), Columnar over VARCHAR JSON
// (≈MonetDB/DBMS C, whose JSON support the paper calls immature).
#include "bench/bench_common.h"

namespace proteus {
namespace bench {
namespace {

using baselines::AggKind;
using baselines::BenchQuery;

void Register() {
  struct Variant {
    const char* name;
    const char* proteus_aggs;
    std::vector<baselines::BenchAgg> aggs;
  };
  std::vector<Variant> variants = {
      {"Q1_count", "count(*)", {{AggKind::kCount, ""}}},
      {"Q2_max", "max(l_quantity)", {{AggKind::kMax, "l_quantity"}}},
      {"Q3_aggr4",
       "count(*), max(l_quantity), sum(l_extendedprice), min(l_discount)",
       {{AggKind::kCount, ""},
        {AggKind::kMax, "l_quantity"},
        {AggKind::kSum, "l_extendedprice"},
        {AggKind::kMin, "l_discount"}}},
  };
  for (const auto& v : variants) {
    for (int sel : Selectivities()) {
      int64_t key = KeyFor(sel);
      std::string tag = std::string("fig05/") + v.name + "/sel=" + std::to_string(sel) + "/";
      std::string q = std::string("SELECT ") + v.proteus_aggs +
                      " FROM lineitem_json WHERE l_orderkey < " + std::to_string(key);
      RegisterMs(tag + "Proteus", [q] { return ProteusMs(q); });

      BenchQuery bq;
      bq.table = "lineitem";
      bq.where = {{.col = "l_orderkey", .cmp = '<', .val = static_cast<double>(key)}};
      bq.aggs = v.aggs;
      RegisterMs(tag + "RowStore_jsonb",
                 [bq] { return BaselineMs(Systems::Get().row, bq); });
      RegisterMs(tag + "DocStore_bson",
                 [bq] { return BaselineMs(Systems::Get().doc, bq); });
      BenchQuery vq = bq;
      vq.table = "lineitem_varchar";
      RegisterMs(tag + "Columnar_varchar",
                 [vq] { return BaselineMs(Systems::Get().col, vq); });
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();
  return proteus::bench::WriteBenchReport("fig05");
}
