// Ablations for the design choices DESIGN.md calls out:
//   (a) JSON structural index modes: fixed-schema deterministic slots vs
//       Level-0 associative lookup (paper §5.2 "Specializing per Dataset
//       Contents") — same query, files written with/without field-order
//       shuffling.
//   (b) CSV structural index stride sweep: denser sampling = bigger index,
//       cheaper far-field access (paper stores every Nth field position).
//   (c) Cache policy: caching strings vs OID-based hybrid reads
//       (paper §6 "Cache Policies" avoids caching variable-length strings).
#include "bench/bench_common.h"

#include "src/plugins/csv_plugin.h"
#include "src/plugins/json_plugin.h"

namespace proteus {
namespace bench {
namespace {

// ---- (a) JSON index modes -------------------------------------------------

double JsonReadAll(JsonPlugin* p, const FieldPath& path) {
  return WallMs([&] {
    double acc = 0;
    for (uint64_t oid = 0; oid < p->NumRecords(); ++oid) {
      auto v = p->ReadValue(oid, path);
      if (v.ok() && !v->is_null()) acc += v->AsFloat();
    }
    benchmark::DoNotOptimize(acc);
  });
}

void RegisterJsonModes() {
  const BenchCorpus& c = BenchCorpus::Get();
  // Ordered file: all objects share one field order -> fixed-schema mode.
  std::string ordered = c.dir + "/lineitem_ordered.json";
  if (!std::filesystem::exists(ordered)) {
    Status s = WriteJSONFile(ordered, c.lineitem, {});
    if (!s.ok()) std::abort();
  }
  auto make = [&](const std::string& path, bool exploit) {
    DatasetInfo info{.name = "abl_json", .format = DataFormat::kJSON, .path = path,
                     .type = datagen::LineitemSchema()};
    info.json.exploit_fixed_schema = exploit;
    auto p = std::make_shared<JsonPlugin>(info);
    if (!p->Open().ok()) std::abort();
    return p;
  };
  auto fixed = make(ordered, true);
  auto level0_forced = make(ordered, false);       // same data, Level 0 kept
  auto shuffled = make(c.dir + "/lineitem.json", true);  // arbitrary order

  RegisterMs("ablation/json_index/fixed_schema_slots",
             [fixed] { return JsonReadAll(fixed.get(), {"l_tax"}); });
  RegisterMs("ablation/json_index/level0_lookup",
             [level0_forced] { return JsonReadAll(level0_forced.get(), {"l_tax"}); });
  RegisterMs("ablation/json_index/level0_shuffled_order",
             [shuffled] { return JsonReadAll(shuffled.get(), {"l_tax"}); });
  printf("-- JSON index bytes: fixed=%zu level0=%zu (fixed saves %.1f%%)\n",
         fixed->StructuralIndexBytes(), level0_forced->StructuralIndexBytes(),
         100.0 - 100.0 * fixed->StructuralIndexBytes() /
                     level0_forced->StructuralIndexBytes());
}

// ---- (b) CSV stride sweep ---------------------------------------------------

void RegisterCsvStride() {
  const BenchCorpus& c = BenchCorpus::Get();
  // Variable-width CSV is required, or the fixed-width fast path kicks in;
  // the lineitem comment strings give variable rows.
  for (int stride : {1, 2, 5, 10}) {
    DatasetInfo info{.name = "abl_csv", .format = DataFormat::kCSV,
                     .path = c.dir + "/lineitem.csv", .type = datagen::LineitemSchema()};
    info.csv.index_stride = stride;
    auto p = std::make_shared<CsvPlugin>(info);
    if (!p->Open().ok()) std::abort();
    printf("-- CSV stride %2d: index bytes %zu%s\n", stride, p->StructuralIndexBytes(),
           p->fixed_width() ? " [fixed-width: stride moot]" : "");
    RegisterMs("ablation/csv_stride/" + std::to_string(stride) + "/read_last_field",
               [p] {
                 return WallMs([&] {
                   double acc = 0;
                   for (uint64_t oid = 0; oid < p->NumRecords(); ++oid) {
                     auto v = p->ReadValue(oid, {"l_tax"});
                     if (v.ok()) acc += v->AsFloat();
                   }
                   benchmark::DoNotOptimize(acc);
                 });
               });
  }
}

// ---- (c) Cache string policy ------------------------------------------------

void RegisterCachePolicy() {
  auto run = [](bool cache_strings) {
    EngineOptions opts = BenchEngineOptions();
    opts.cache_policy.enabled = true;
    opts.cache_policy.cache_strings = cache_strings;
    auto engine = std::make_shared<QueryEngine>(opts);
    RegisterBenchDatasets(engine.get());
    std::string q =
        "SELECT count(*) FROM lineitem_json WHERE l_shipmode = 'AIR' and "
        "l_orderkey < " +
        std::to_string(KeyFor(50));
    auto prime = engine->Execute(q);  // builds caches
    if (!prime.ok()) std::abort();
    return std::make_pair(engine, q);
  };
  auto [with_strings, q1] = run(true);
  auto [without_strings, q2] = run(false);
  printf("-- cache bytes: strings cached=%zu, hybrid OID reads=%zu\n",
         with_strings->caches().total_bytes(), without_strings->caches().total_bytes());
  auto engine_w = with_strings;
  std::string qw = q1;
  RegisterMs("ablation/cache_policy/strings_cached", [engine_w, qw] {
    auto r = engine_w->Execute(qw);
    if (!r.ok()) std::abort();
    return engine_w->telemetry().execute_ms;
  });
  auto engine_n = without_strings;
  std::string qn = q2;
  RegisterMs("ablation/cache_policy/hybrid_oid_reads", [engine_n, qn] {
    auto r = engine_n->Execute(qn);
    if (!r.ok()) std::abort();
    return engine_n->telemetry().execute_ms;
  });
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::RegisterJsonModes();
  proteus::bench::RegisterCsvStride();
  proteus::bench::RegisterCachePolicy();
  ::benchmark::RunSpecifiedBenchmarks();
  return proteus::bench::WriteBenchReport("ablation");
}
