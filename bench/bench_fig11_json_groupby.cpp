// Figure 11: aggregate (GROUP BY) queries over JSON data.
// Template: SELECT AGG(val1),... FROM lineitem WHERE l_orderkey < X
//           GROUP BY l_linenumber — 1 / 3 / 4 aggregates.
#include "bench/bench_common.h"

namespace proteus {
namespace bench {
namespace {

using baselines::AggKind;
using baselines::BenchQuery;

struct Variant {
  const char* name;
  const char* proteus_aggs;
  std::vector<baselines::BenchAgg> aggs;
};

std::vector<Variant> GroupVariants() {
  return {
      {"Q1_aggr1", "count(*)", {{AggKind::kCount, ""}}},
      {"Q2_aggr3",
       "count(*), max(l_quantity), sum(l_extendedprice)",
       {{AggKind::kCount, ""},
        {AggKind::kMax, "l_quantity"},
        {AggKind::kSum, "l_extendedprice"}}},
      {"Q3_aggr4",
       "count(*), max(l_quantity), sum(l_extendedprice), min(l_discount)",
       {{AggKind::kCount, ""},
        {AggKind::kMax, "l_quantity"},
        {AggKind::kSum, "l_extendedprice"},
        {AggKind::kMin, "l_discount"}}},
  };
}

void Register() {
  for (const auto& v : GroupVariants()) {
    for (int sel : Selectivities()) {
      int64_t key = KeyFor(sel);
      std::string tag = std::string("fig11/") + v.name + "/sel=" + std::to_string(sel) + "/";
      std::string q = std::string("SELECT l_linenumber, ") + v.proteus_aggs +
                      " FROM lineitem_json WHERE l_orderkey < " + std::to_string(key) +
                      " GROUP BY l_linenumber";
      RegisterMs(tag + "Proteus", [q] { return ProteusMs(q); });
      // Morsel-parallel scaling: per-worker partial groups merged at the end.
      if (sel == 100) {
        for (int threads : ThreadCounts()) {
          RegisterMs(tag + "Proteus_parallel/threads=" + std::to_string(threads),
                     [q, threads] { return ThreadedMs(threads, q); });
        }
        // Parallel JIT pipelines: generated per-morsel group partials merged
        // in global morsel order.
        for (int threads : ThreadCounts()) {
          RegisterMs(tag + "Proteus_jit_parallel/threads=" + std::to_string(threads),
                     [q, threads] { return JitThreadedMs(threads, q); });
        }
        // Partitioned scale-out: per-shard group tables cross the serialized
        // wire format and merge in global morsel order.
        for (int shards : ShardCounts()) {
          RegisterMs(tag + "Proteus_sharded/shards=" + std::to_string(shards),
                     [q, shards] { return ShardedMs(shards, q); });
        }
      }

      BenchQuery bq;
      bq.table = "lineitem";
      bq.where = {{.col = "l_orderkey", .cmp = '<', .val = static_cast<double>(key)}};
      bq.aggs = v.aggs;
      bq.group_by = "l_linenumber";
      RegisterMs(tag + "RowStore_jsonb",
                 [bq] { return BaselineMs(Systems::Get().row, bq); });
      RegisterMs(tag + "DocStore_bson",
                 [bq] { return BaselineMs(Systems::Get().doc, bq); });
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();
  return proteus::bench::WriteBenchReport("fig11");
}
