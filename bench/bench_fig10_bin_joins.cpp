// Figure 10: join queries over binary relational data.
// The sorted columnar baseline (≈DBMS C) exploits sort-on-load + zone maps
// for selective probes — the head start the paper reports; at high
// selectivity its materialized intermediates flip the ranking to Proteus.
#include "bench/bench_common.h"

namespace proteus {
namespace bench {
namespace {

using baselines::AggKind;
using baselines::BenchQuery;

void Register() {
  struct Variant {
    const char* name;
    const char* proteus_aggs;
    std::vector<baselines::BenchAgg> probe_aggs;
    std::vector<baselines::BenchAgg> build_aggs;
  };
  std::vector<Variant> variants = {
      {"Q1_count", "count(*)", {{AggKind::kCount, ""}}, {}},
      {"Q2_max", "max(o.o_totalprice)", {}, {{AggKind::kMax, "o_totalprice"}}},
      {"Q3_aggr2",
       "count(*), max(o.o_totalprice)",
       {{AggKind::kCount, ""}},
       {{AggKind::kMax, "o_totalprice"}}},
  };
  for (const auto& v : variants) {
    for (int sel : Selectivities()) {
      int64_t key = KeyFor(sel);
      std::string tag = std::string("fig10/") + v.name + "/sel=" + std::to_string(sel) + "/";
      std::string q = std::string("SELECT ") + v.proteus_aggs +
                      " FROM orders_bin o JOIN lineitem_bin l ON o.o_orderkey = "
                      "l.l_orderkey WHERE l.l_orderkey < " +
                      std::to_string(key);
      RegisterMs(tag + "Proteus", [q] { return ProteusMs(q); });

      BenchQuery bq;
      bq.table = "lineitem";
      bq.where = {{.col = "l_orderkey", .cmp = '<', .val = static_cast<double>(key)}};
      bq.aggs = v.probe_aggs;
      bq.build_aggs = v.build_aggs;
      bq.join_table = "orders";
      bq.probe_key = "l_orderkey";
      bq.build_key = "o_orderkey";
      RegisterMs(tag + "RowStore", [bq] { return BaselineMs(Systems::Get().row, bq); });
      RegisterMs(tag + "Columnar", [bq] { return BaselineMs(Systems::Get().col, bq); });
      // Sideways information passing (DBMS C / X): the key filter applies to
      // both join sides, pruning build pairs.
      BenchQuery sq = bq;
      sq.build_where = {{.col = "o_orderkey", .cmp = '<', .val = static_cast<double>(key)}};
      RegisterMs(tag + "Columnar_sorted_sip",
                 [sq] { return BaselineMs(Systems::Get().col_sorted, sq); });
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();
  return proteus::bench::WriteBenchReport("fig10");
}
