// Figure 9: join and unnest queries over JSON data.
// Join template: SELECT AGG(o.val)... FROM orders o JOIN lineitem l ON
// o_orderkey = l_orderkey WHERE l_orderkey < X. The "Q4_unnest" variant runs
// the COUNT over denormalized JSON (orders embedding lineitem arrays) —
// document stores lack joins, so the paper compares unnest there.
// DocStore joins go through its map-reduce path (COUNT variant only, as the
// paper lists MongoDB only for the first query "as an indication").
#include "bench/bench_common.h"

namespace proteus {
namespace bench {
namespace {

using baselines::AggKind;
using baselines::BenchQuery;

void Register() {
  struct Variant {
    const char* name;
    const char* proteus_aggs;
    std::vector<baselines::BenchAgg> probe_aggs;
    std::vector<baselines::BenchAgg> build_aggs;
  };
  std::vector<Variant> variants = {
      {"Q1_count", "count(*)", {{AggKind::kCount, ""}}, {}},
      {"Q2_max", "max(o.o_totalprice)", {}, {{AggKind::kMax, "o_totalprice"}}},
      {"Q3_aggr2",
       "count(*), max(o.o_totalprice)",
       {{AggKind::kCount, ""}},
       {{AggKind::kMax, "o_totalprice"}}},
  };
  for (const auto& v : variants) {
    for (int sel : Selectivities()) {
      int64_t key = KeyFor(sel);
      std::string tag = std::string("fig09/") + v.name + "/sel=" + std::to_string(sel) + "/";
      std::string q = std::string("SELECT ") + v.proteus_aggs +
                      " FROM orders_json o JOIN lineitem_json l ON o.o_orderkey = "
                      "l.l_orderkey WHERE l.l_orderkey < " +
                      std::to_string(key);
      RegisterMs(tag + "Proteus", [q] { return ProteusMs(q); });
      // Morsel-parallel scaling: build + probe fan out over the scheduler.
      if (sel == 100) {
        for (int threads : ThreadCounts()) {
          RegisterMs(tag + "Proteus_parallel/threads=" + std::to_string(threads),
                     [q, threads] { return ThreadedMs(threads, q); });
        }
        // Parallel JIT pipelines: the same fan-out through generated code
        // (build once, range-parameterized probe per morsel).
        for (int threads : ThreadCounts()) {
          RegisterMs(tag + "Proteus_jit_parallel/threads=" + std::to_string(threads),
                     [q, threads] { return JitThreadedMs(threads, q); });
        }
        // Partitioned scale-out: the probe scan's morsels deal out to shard
        // executors; partials merge through the serialized wire format.
        for (int shards : ShardCounts()) {
          RegisterMs(tag + "Proteus_sharded/shards=" + std::to_string(shards),
                     [q, shards] { return ShardedMs(shards, q); });
        }
      }

      BenchQuery bq;
      bq.table = "lineitem";
      bq.where = {{.col = "l_orderkey", .cmp = '<', .val = static_cast<double>(key)}};
      bq.aggs = v.probe_aggs;
      bq.build_aggs = v.build_aggs;
      bq.join_table = "orders";
      bq.probe_key = "l_orderkey";
      bq.build_key = "o_orderkey";
      RegisterMs(tag + "RowStore_jsonb",
                 [bq] { return BaselineMs(Systems::Get().row, bq); });
      if (std::string(v.name) == "Q1_count") {
        RegisterMs(tag + "DocStore_mapreduce",
                   [bq] { return BaselineMs(Systems::Get().doc, bq); });
      }
    }
  }
  // Q4: unnest over denormalized JSON.
  for (int sel : Selectivities()) {
    int64_t key = KeyFor(sel);
    std::string tag = "fig09/Q4_unnest/sel=" + std::to_string(sel) + "/";
    std::string q =
        "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l WHERE "
        "l.l_orderkey < " +
        std::to_string(key);
    RegisterMs(tag + "Proteus", [q] { return ProteusMs(q); });
    BenchQuery bq;
    bq.table = "denorm";
    bq.aggs = {{AggKind::kCount, ""}};
    bq.unnest_path = "lineitems";
    bq.unnest_where = {{.col = "l_orderkey", .cmp = '<', .val = static_cast<double>(key)}};
    RegisterMs(tag + "RowStore_jsonb", [bq] { return BaselineMs(Systems::Get().row, bq); });
    RegisterMs(tag + "DocStore_native", [bq] { return BaselineMs(Systems::Get().doc, bq); });
  }
  // Q5: outer join through the parallel generated engine (matched-build
  // bitmaps + generated unmatched-drain pass). Built directly on the algebra
  // — the SQL frontend does not expose outer joins. Aborts if telemetry
  // shows the interpreter silently served it: a jit_parallel variant that
  // measured the interpreter would be exactly the reporting bug the
  // telemetry work closed (same guard as JitThreadedMs).
  for (int threads : ThreadCounts()) {
    std::string tag =
        "fig09/Q5_outerjoin/sel=100/Proteus_jit_parallel/threads=" + std::to_string(threads);
    RegisterMs(tag, [threads] {
      QueryEngine& e = JitThreadedEngine(threads);
      OpPtr scan_o = Operator::Scan("orders_json", "o");
      OpPtr scan_l = Operator::Scan("lineitem_json", "l");
      ExprPtr pred = Expr::Bin(BinOp::kEq, Expr::Proj(Expr::Var("o"), "o_orderkey"),
                               Expr::Proj(Expr::Var("l"), "l_orderkey"));
      OpPtr join = Operator::Join(std::move(scan_o), std::move(scan_l), std::move(pred),
                                  /*outer=*/true);
      OpPtr plan = Operator::Reduce(
          std::move(join),
          {{Monoid::kCount, nullptr, "n"},
           {Monoid::kMax, Expr::Proj(Expr::Var("o"), "o_totalprice"), "maxp"}});
      auto r = e.ExecutePlan(std::move(plan));
      if (!r.ok()) {
        fprintf(stderr, "proteus jit[%d threads] outer join failed: %s\n", threads,
                r.status().ToString().c_str());
        std::abort();
      }
      if (!e.telemetry().used_jit || !e.telemetry().jit_parallel) {
        fprintf(stderr,
                "proteus jit[%d threads] outer join fell back to the interpreter: %s\n",
                threads, e.telemetry().fallback_reason.c_str());
        std::abort();
      }
      return e.telemetry().execute_ms;
    });
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();
  return proteus::bench::WriteBenchReport("fig09");
}
