// Figure 13: effect of adaptive caching on (a) a projection-intensive and
// (b) a selection-intensive query over JSON data.
//
// "Baseline" is the Proteus configuration of the other figures (caching
// off). "CachedPredicate" runs on an engine whose caches were already
// populated by an earlier query (we prime them, mirroring the paper's
// setup), so predicate/projection fields are served from binary columns.
// The benchmark prints both times; the figure's speedup is their ratio.
#include "bench/bench_common.h"

namespace proteus {
namespace bench {
namespace {

QueryEngine& CachedEngine() {
  static QueryEngine* engine = [] {
    EngineOptions opts = BenchEngineOptions();
    opts.cache_policy.enabled = true;
    auto* e = new QueryEngine(opts);
    RegisterBenchDatasets(e);
    // Prime: a query touching the fields of interest populates the caches
    // as a side-effect (the Q16-style first access).
    auto r = e->Execute(
        "SELECT count(*), max(l_quantity), sum(l_extendedprice), min(l_discount), "
        "sum(l_tax) FROM lineitem_json WHERE l_orderkey >= 0");
    if (!r.ok()) {
      fprintf(stderr, "prime: %s\n", r.status().ToString().c_str());
      std::abort();
    }
    return e;
  }();
  return *engine;
}

double CachedMs(const std::string& q) {
  auto r = CachedEngine().Execute(q);
  if (!r.ok()) {
    fprintf(stderr, "cached: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  if (!CachedEngine().telemetry().used_cache) {
    fprintf(stderr, "warning: query did not hit the cache: %s\n", q.c_str());
  }
  return CachedEngine().telemetry().execute_ms;
}

void Register() {
  for (int sel : Selectivities()) {
    int64_t key = KeyFor(sel);
    // (a) projection template: selection + 4 projected aggregates.
    std::string proj =
        "SELECT max(l_quantity), sum(l_extendedprice), min(l_discount), sum(l_tax) "
        "FROM lineitem_json WHERE l_orderkey < " +
        std::to_string(key);
    std::string tag = "fig13/projection/sel=" + std::to_string(sel) + "/";
    RegisterMs(tag + "Baseline", [proj] { return ProteusMs(proj); });
    RegisterMs(tag + "CachedPredicate", [proj] { return CachedMs(proj); });

    // (b) selection template: 4 predicates, COUNT.
    std::string selq =
        "SELECT count(*) FROM lineitem_json WHERE l_orderkey < " + std::to_string(key) +
        " and l_quantity < 45.0 and l_discount < 0.09 and l_tax < 0.07";
    std::string tag2 = "fig13/selection/sel=" + std::to_string(sel) + "/";
    RegisterMs(tag2 + "Baseline", [selq] { return ProteusMs(selq); });
    RegisterMs(tag2 + "CachedPredicate", [selq] { return CachedMs(selq); });
  }
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  proteus::bench::Register();
  ::benchmark::RunSpecifiedBenchmarks();

  // Print the figure's speedup series and cache footprint.
  using namespace proteus::bench;
  auto& eng = CachedEngine();
  size_t cache_bytes = eng.caches().total_bytes();
  size_t file_bytes = std::filesystem::file_size(BenchCorpus::Get().dir + "/lineitem.json");
  printf("\n-- Figure 13 summary --\n");
  printf("cache size: %.2f%% of the JSON file (%zu / %zu bytes)\n",
         100.0 * cache_bytes / file_bytes, cache_bytes, file_bytes);
  for (int sel : Selectivities()) {
    int64_t key = KeyFor(sel);
    std::string proj =
        "SELECT max(l_quantity), sum(l_extendedprice), min(l_discount), sum(l_tax) "
        "FROM lineitem_json WHERE l_orderkey < " +
        std::to_string(key);
    std::string selq =
        "SELECT count(*) FROM lineitem_json WHERE l_orderkey < " + std::to_string(key) +
        " and l_quantity < 45.0 and l_discount < 0.09 and l_tax < 0.07";
    double pb = ProteusMs(proj), pc = CachedMs(proj);
    double sb = ProteusMs(selq), sc = CachedMs(selq);
    printf("sel=%3d%%  projection speedup %5.2fx   selection speedup %5.2fx\n", sel,
           pb / pc, sb / sc);
  }
  return WriteBenchReport("fig13");
}
