// "An engine per query" (§5.1): shows the LLVM IR Proteus generates for the
// paper's Figure 3 query — SELECT COUNT(*) FROM A WHERE e — a single tight
// while-loop with the selection as an if-block, no operator boundaries.
#include <cstdio>
#include <fstream>

#include "src/core/query_engine.h"
#include "src/datagen/tpch.h"
#include "src/storage/bincol_format.h"

using namespace proteus;

int main() {
  RowTable lineitem = datagen::GenLineitem(1000);
  Status s = WriteBinaryColumnDir("/tmp/epq_lineitem.bincol", lineitem);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  QueryEngine engine;
  s = engine.RegisterDataset({.name = "lineitem",
                              .format = DataFormat::kBinaryColumn,
                              .path = "/tmp/epq_lineitem.bincol",
                              .type = datagen::LineitemSchema()});
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  auto result = engine.Execute(
      "SELECT count(*) FROM lineitem WHERE l_quantity < 25.0 and l_discount < 0.05");
  if (!result.ok()) {
    fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  printf("count = %s\n\n", result->scalar().ToString().c_str());
  printf("physical plan:\n%s\n", engine.telemetry().plan.c_str());
  printf("generated LLVM IR (the 'engine' built for this one query):\n\n%s\n",
         engine.last_ir().c_str());
  printf("codegen + compile: %.1f ms (paper: at most ~50 ms per query)\n",
         engine.telemetry().compile_ms);
  return 0;
}
