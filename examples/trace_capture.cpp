// Capture a query trace: run one tiered, sharded, traced query and export
// the recorded spans as Chrome-trace / Perfetto JSON.
//
//   $ ./example_trace_capture [trace.json]
//
// Open the file at https://ui.perfetto.dev (or chrome://tracing): one track
// per shard shows interpreter morsels until the background compile lands,
// the hot_swap instant, and the generated tail; the background-compiler
// track shows the overlapping compile; the main track shows the optimizer,
// cache probes, exchange, and the final partial merge. The same run feeds
// the process-wide metrics registry, printed in Prometheus text form.
//
// CI runs this binary as the trace smoke test and validates the JSON.
#include <cstdio>
#include <iostream>

#include "src/core/query_engine.h"
#include "src/datagen/tpch.h"
#include "src/storage/text_writers.h"

using namespace proteus;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "/tmp/proteus_trace.json";

  // A JSON lineitem file big enough to decompose into many morsels.
  const std::string data = "/tmp/trace_capture_lineitem.json";
  RowTable lineitem = datagen::GenLineitem(/*num_orders=*/400, /*seed=*/7);
  Status s = WriteJSONFile(data, lineitem);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  EngineOptions opts;
  opts.trace = true;
  opts.metrics = &obs::MetricsRegistry::Global();
  opts.tiered = true;      // interpreter-first cold start, hot-swap to JIT
  opts.num_shards = 2;     // partitioned fan-out with a partial exchange
  opts.num_threads = 2;    // morsel workers per shard
  opts.morsel_rows = 64;   // fine morsels: visible per-morsel spans
  // Pin the swap after one interpreted morsel per shard so the exported
  // trace always shows both engines (a real cold run swaps wherever the
  // compile lands; drop this line to watch the natural race).
  opts.tiered_opts.force_swap_after_morsels = 1;
  QueryEngine engine(opts);
  s = engine.RegisterDataset({.name = "lineitem",
                              .format = DataFormat::kJSON,
                              .path = data,
                              .type = datagen::LineitemSchema()});
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  auto result = engine.Execute(
      "SELECT count(*), sum(l_extendedprice), max(l_quantity) FROM lineitem "
      "WHERE l_orderkey < 300");
  if (!result.ok()) {
    fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  obs::QueryTrace trace = engine.trace()->Snapshot();
  s = trace.WriteJsonFile(out_path);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const QueryTelemetry& t = engine.telemetry();
  printf("result:\n%s\n", result->ToString().c_str());
  printf("shards=%d  morsels interpreted=%llu jit=%llu  swap at %.2f ms\n",
         t.shards_used, static_cast<unsigned long long>(t.morsels_interpreted),
         static_cast<unsigned long long>(t.morsels_jit), t.swap_ms);
  printf("trace: %zu events -> %s (open in https://ui.perfetto.dev)\n",
         trace.events.size(), out_path.c_str());
  printf("\nmetrics:\n");
  obs::MetricsRegistry::Global().WriteText(std::cout);
  return 0;
}
