// Server smoke test: one QueryServer over one shared engine, N concurrent
// clients each running the same query mix over TCP. Exits non-zero if any
// client sees an error, any result diverges from the single-threaded
// baseline, or the metrics registry disagrees with what the clients did
// (proteus_queries_total < N * kQueriesPerClient, or a non-zero error
// count). CI runs this as the Release serving gate.
#include <atomic>
#include <cstdio>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "src/core/query_engine.h"
#include "src/datagen/tpch.h"
#include "src/obs/metrics.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/storage/bincol_format.h"

using namespace proteus;

namespace {

constexpr int kClients = 8;

const char* kQueries[] = {
    "SELECT count(*) FROM lineitem WHERE l_quantity < 25.0",
    "SELECT sum(l_extendedprice) FROM lineitem WHERE l_discount < 0.05",
    "SELECT l_shipmode, count(*) AS c, sum(l_quantity) AS q FROM lineitem "
    "GROUP BY l_shipmode",
    "SELECT max(l_extendedprice) FROM lineitem WHERE l_tax > 0.02",
};
constexpr int kQueriesPerClient = static_cast<int>(std::size(kQueries));

bool Identical(const QueryResult& a, const QueryResult& b) {
  if (a.columns != b.columns || a.rows.size() != b.rows.size()) return false;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (!a.rows[r][c].Equals(b.rows[r][c])) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  RowTable lineitem = datagen::GenLineitem(5000);
  Status s = WriteBinaryColumnDir("/tmp/serve_smoke_lineitem.bincol", lineitem);
  if (!s.ok()) {
    fprintf(stderr, "datagen: %s\n", s.ToString().c_str());
    return 1;
  }
  DatasetInfo decl{.name = "lineitem",
                   .format = DataFormat::kBinaryColumn,
                   .path = "/tmp/serve_smoke_lineitem.bincol",
                   .type = datagen::LineitemSchema()};

  // Single-threaded baseline engine: the ground truth for every cell.
  EngineOptions baseline_opts;
  baseline_opts.num_threads = 1;
  QueryEngine baseline(baseline_opts);
  if (!(s = baseline.RegisterDataset(decl)).ok()) {
    fprintf(stderr, "baseline register: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<QueryResult> expect;
  for (const char* q : kQueries) {
    auto r = baseline.Execute(q);
    if (!r.ok()) {
      fprintf(stderr, "baseline %s: %s\n", q, r.status().ToString().c_str());
      return 1;
    }
    expect.push_back(*std::move(r));
  }

  obs::MetricsRegistry metrics;
  EngineOptions opts;
  opts.metrics = &metrics;
  QueryEngine engine(opts);
  if (!(s = engine.RegisterDataset(decl)).ok()) {
    fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }

  serve::ServerOptions sopts;
  sopts.admission.max_inflight = 4;
  sopts.admission.queue_depth = 2 * kClients * kQueriesPerClient;
  serve::QueryServer server(&engine, sopts);
  if (!(s = server.Start()).ok()) {
    fprintf(stderr, "server start: %s\n", s.ToString().c_str());
    return 1;
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = serve::ServeClient::Connect(server.port());
      if (!client.ok()) {
        fprintf(stderr, "client %d connect: %s\n", c,
                client.status().ToString().c_str());
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesPerClient; ++q) {
        auto resp = client->Execute(kQueries[q]);
        if (!resp.ok() || resp->type != serve::FrameType::kResult) {
          fprintf(stderr, "client %d query %d: %s\n", c, q,
                  resp.ok() ? resp->error.ToString().c_str()
                            : resp.status().ToString().c_str());
          failures.fetch_add(1);
          return;
        }
        if (!Identical(resp->result, expect[q])) {
          fprintf(stderr, "client %d query %d: result diverges from baseline\n",
                  c, q);
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Stop();

  const int64_t total =
      static_cast<int64_t>(metrics.GetCounter("proteus_queries_total")->value());
  const int64_t errors = static_cast<int64_t>(
      metrics.GetCounter("proteus_query_errors_total")->value());
  const int64_t inflight = metrics.GetGauge("proteus_queries_inflight")->value();
  printf("serve smoke: %d clients x %d queries, queries_total=%lld errors=%lld "
         "inflight=%lld admitted=%llu rejected=%llu\n",
         kClients, kQueriesPerClient, static_cast<long long>(total),
         static_cast<long long>(errors), static_cast<long long>(inflight),
         static_cast<unsigned long long>(server.admission().admitted()),
         static_cast<unsigned long long>(server.admission().rejected()));
  if (failures.load() != 0) return 1;
  if (total < kClients * kQueriesPerClient) {
    fprintf(stderr, "queries_total %lld < expected %d\n",
            static_cast<long long>(total), kClients * kQueriesPerClient);
    return 1;
  }
  if (errors != 0) {
    fprintf(stderr, "expected zero errors, saw %lld\n",
            static_cast<long long>(errors));
    return 1;
  }
  if (inflight != 0) {
    fprintf(stderr, "inflight gauge should settle at 0, saw %lld\n",
            static_cast<long long>(inflight));
    return 1;
  }
  printf("serve smoke: OK\n");
  return 0;
}
