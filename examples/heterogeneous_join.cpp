// The paper's running example (§3, Example 3.1): sailors with nested
// children, ships with nested personnel arrays — "for each sailor, return
// his id, the name of the ship on which he works, and the names of his
// adult children". The query uses the monoid comprehension syntax and
// exercises two Unnest operators plus a join, over JSON documents.
#include <cstdio>
#include <fstream>

#include "src/core/query_engine.h"

using namespace proteus;

int main() {
  {
    std::ofstream sailors("/tmp/sailors.json");
    sailors
        << R"({"id":1,"name":"yossarian","children":[{"name":"nately","age":21},{"name":"orr","age":15}]})"
        << "\n"
        << R"({"id":2,"name":"ahab","children":[{"name":"ishmael","age":30}]})" << "\n"
        << R"({"id":3,"name":"flint","children":[]})" << "\n";
    std::ofstream ships("/tmp/ships.json");
    ships << R"({"name":"pequod","personnel":[2,3]})" << "\n"
          << R"({"name":"caine","personnel":[1]})" << "\n";
  }

  QueryEngine engine;
  TypePtr child = Type::Record({{"name", Type::String()}, {"age", Type::Int64()}});
  Status s = engine.RegisterDataset(
      {.name = "sailors",
       .format = DataFormat::kJSON,
       .path = "/tmp/sailors.json",
       .type = Type::BagOfRecords(
           {{"id", Type::Int64()},
            {"name", Type::String()},
            {"children", Type::Collection(CollectionKind::kArray, child)}})});
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  s = engine.RegisterDataset(
      {.name = "ships",
       .format = DataFormat::kJSON,
       .path = "/tmp/ships.json",
       .type = Type::BagOfRecords(
           {{"name", Type::String()},
            {"personnel", Type::Collection(CollectionKind::kArray, Type::Int64())}})});
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Example 3.1, adjusted to this schema: personnel holds sailor ids.
  const char* query =
      "for { s1 <- sailors, c <- s1.children, s2 <- ships, p <- s2.personnel, "
      "      s1.id = p, c.age > 18 } "
      "yield bag <id: s1.id, ship: s2.name, child: c.name>";

  auto result = engine.Execute(query);
  if (!result.ok()) {
    fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  printf("query:\n  %s\n\nresult:\n%s\n", query, result->ToString().c_str());
  printf("physical plan (note the two Unnest operators of Fig 1):\n%s\n",
         engine.telemetry().plan.c_str());
  if (!engine.telemetry().fallback_reason.empty()) {
    printf("(interpreted: %s)\n", engine.telemetry().fallback_reason.c_str());
  }
  return 0;
}
