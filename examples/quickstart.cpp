// Quickstart: register a raw CSV file and a raw JSON file, query both with
// SQL — no loading step, one interface.
//
//   $ ./example_quickstart
#include <cstdio>
#include <fstream>

#include "src/core/query_engine.h"

using namespace proteus;

int main() {
  // 1. Some raw data, exactly as it might arrive from the outside world.
  {
    std::ofstream csv("/tmp/quickstart_employees.csv");
    csv << "1,alice,engineering,98000\n"
           "2,bob,engineering,91000\n"
           "3,carol,sales,85000\n"
           "4,dave,sales,78000\n"
           "5,erin,research,120000\n";
    std::ofstream json("/tmp/quickstart_reviews.json");
    json << R"({"emp_id":1,"year":2025,"rating":4.5})" << "\n"
         << R"({"emp_id":2,"year":2025,"rating":3.9})" << "\n"
         << R"({"emp_id":3,"year":2025,"rating":4.1})" << "\n"
         << R"({"emp_id":5,"year":2025,"rating":4.9})" << "\n";
  }

  // 2. Register the files in situ — Proteus never converts or loads them.
  QueryEngine engine;
  Status s = engine.RegisterDataset(
      {.name = "employees",
       .format = DataFormat::kCSV,
       .path = "/tmp/quickstart_employees.csv",
       .type = Type::BagOfRecords({{"id", Type::Int64()},
                                   {"name", Type::String()},
                                   {"dept", Type::String()},
                                   {"salary", Type::Float64()}})});
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  s = engine.RegisterDataset(
      {.name = "reviews",
       .format = DataFormat::kJSON,
       .path = "/tmp/quickstart_reviews.json",
       .type = Type::BagOfRecords({{"emp_id", Type::Int64()},
                                   {"year", Type::Int64()},
                                   {"rating", Type::Float64()}})});
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Query across both formats with plain SQL. Proteus generates a custom
  //    engine for this exact query (LLVM), joining CSV rows to JSON objects.
  auto result = engine.Execute(
      "SELECT count(*), max(r.rating) "
      "FROM employees e JOIN reviews r ON e.id = r.emp_id "
      "WHERE e.salary > 80000.0");
  if (!result.ok()) {
    fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  printf("reviewed employees earning > 80k, best rating:\n%s\n",
         result->ToString().c_str());
  printf("physical plan:\n%s\n", engine.telemetry().plan.c_str());
  printf("engine: %s, codegen %.1f ms, execution %.3f ms\n",
         engine.telemetry().used_jit ? "generated (LLVM)" : "interpreted",
         engine.telemetry().compile_ms, engine.telemetry().execute_ms);
  return 0;
}
