// A miniature of the paper's Symantec workload (§7.2): fresh JSON and CSV
// batches plus a binary history table, queried together with adaptive
// caching enabled. Watch the second JSON-touching query get served from the
// binary caches the first one built as a side-effect.
#include <cstdio>

#include "src/core/query_engine.h"
#include "src/datagen/spam.h"
#include "src/storage/bincol_format.h"
#include "src/storage/text_writers.h"

using namespace proteus;

int main() {
  // Generate one "batch" of the three silos.
  RowTable spam_json = datagen::GenSpamJSON(5000);
  RowTable spam_csv = datagen::GenSpamCSV(5000);
  RowTable spam_bin = datagen::GenSpamBinary(5000);
  JSONWriteOptions shuffle;
  shuffle.shuffle_field_order = true;  // spam-trap JSON has arbitrary order
  Status s = WriteJSONFile("/tmp/spam_batch.json", spam_json, shuffle);
  if (s.ok()) s = WriteCSVFile("/tmp/spam_batch.csv", spam_csv);
  if (s.ok()) s = WriteBinaryColumnDir("/tmp/spam_history.bincol", spam_bin);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  EngineOptions opts;
  opts.cache_policy.enabled = true;  // the paper's adaptive caching
  QueryEngine engine(opts);
  auto reg = [&](DatasetInfo info) {
    Status st = engine.RegisterDataset(std::move(info));
    if (!st.ok()) {
      fprintf(stderr, "%s\n", st.ToString().c_str());
      exit(1);
    }
  };
  reg({.name = "mails", .format = DataFormat::kJSON, .path = "/tmp/spam_batch.json",
       .type = datagen::SpamJSONSchema()});
  reg({.name = "classes", .format = DataFormat::kCSV, .path = "/tmp/spam_batch.csv",
       .type = datagen::SpamCSVSchema()});
  reg({.name = "history", .format = DataFormat::kBinaryColumn,
       .path = "/tmp/spam_history.bincol", .type = datagen::SpamBinarySchema()});

  auto run = [&](const char* label, const std::string& q) {
    auto r = engine.Execute(q);
    if (!r.ok()) {
      fprintf(stderr, "%s: %s\n", label, r.status().ToString().c_str());
      exit(1);
    }
    const auto& t = engine.telemetry();
    printf("%-28s exec %7.2f ms  cache-build %7.2f ms  %s%s%s\n", label, t.execute_ms,
           t.cache_build_ms, t.used_cache ? "[served from cache] " : "",
           t.used_jit ? "[generated engine]" : "[interpreted]",
           t.fallback_reason.empty() ? "" : (" (" + t.fallback_reason + ")").c_str());
    printf("    -> %s", r->ToString(3).c_str());
  };

  printf("== spam analysis over JSON + CSV + binary, caching on ==\n\n");
  run("Q1 json selection (cold)",
      "SELECT count(*), max(score) FROM mails WHERE body_len > 2000");
  run("Q2 json selection (cached)",
      "SELECT count(*), min(score) FROM mails WHERE body_len > 4000");
  run("Q3 unnest spam classes",
      "for { m <- mails, k <- m.classes, k.label > 24 } yield count");
  run("Q4 csv group by label",
      "SELECT label, count(*) FROM classes GROUP BY label");
  run("Q5 json x csv x binary",
      "SELECT count(*) FROM history h JOIN classes c ON h.mail_id = c.mail_id "
      "JOIN mails m ON c.mail_id = m.mail_id "
      "WHERE h.spam_score > 0.5 and c.score_a > 0.5 and m.body_len > 1000");

  printf("\ncaches: %zu blocks, %zu bytes (built as a side-effect of Q1/Q4)\n",
         engine.caches().num_blocks(), engine.caches().total_bytes());
  return 0;
}
