#!/usr/bin/env python3
"""Merge per-binary BENCH_<fig>.json files into one benchmark trajectory.

Each bench binary (bench/bench_fig*.cpp & co.) writes a BENCH_<fig>.json
with its variants' measured samples, per-variant engine telemetry, and a
snapshot of the process-wide metrics registry. This script validates every
file against the schema the C++ reporter emits and merges them into a
single trajectory file — the unit the perf history is tracked in.

Validation is strict and fails loudly: a malformed file, a missing
required field, a wrong type, or an empty sample list is an error, not a
warning — a silently dropped figure would read as "nothing regressed".

Usage:
  scripts/collect_bench.py [--out TRAJECTORY.json] BENCH_fig05.json ...
  scripts/collect_bench.py --glob results_dir   # all BENCH_*.json inside

Exit status: 0 on success, 1 on any validation or I/O failure.
"""

import argparse
import glob
import json
import os
import sys

SCHEMA_VERSION = 1

# variant.telemetry is null for baseline variants; when present it must
# carry at least these fields with these types (bool is also an int in
# Python, so bool checks come first).
TELEMETRY_FIELDS = {
    "execute_ms": (int, float),
    "optimize_ms": (int, float),
    "jit_compile_ms": (int, float),
    "used_jit": bool,
    "jit_parallel": bool,
    "jit_cache_hit": bool,
    "threads_used": int,
    "morsels": int,
    "shards_used": int,
    "bytes_exchanged": int,
    "compile_tier": int,
    "morsels_interpreted": int,
    "morsels_jit": int,
    "tasks_dealt": int,
    "steals": int,
    "join_strategy": str,
}


class SchemaError(Exception):
    pass


def _check(cond, path, msg):
    if not cond:
        raise SchemaError(f"{path}: {msg}")


def _check_type(value, types, path, field):
    # bool is a subclass of int: reject True where a number is expected
    # unless bool is the expected type itself.
    if types is not bool and isinstance(value, bool):
        raise SchemaError(f"{path}: field '{field}' must not be a boolean")
    if not isinstance(value, types):
        want = types.__name__ if isinstance(types, type) else "number"
        raise SchemaError(f"{path}: field '{field}' must be {want}, got "
                          f"{type(value).__name__}")


def validate_report(doc, path):
    """Raises SchemaError unless `doc` is a well-formed BENCH_<fig> report."""
    _check(isinstance(doc, dict), path, "top level must be a JSON object")
    for field in ("schema_version", "fig", "scale", "variants", "metrics"):
        _check(field in doc, path, f"missing required field '{field}'")
    _check(doc["schema_version"] == SCHEMA_VERSION, path,
           f"schema_version {doc['schema_version']!r}, expected {SCHEMA_VERSION}")
    _check_type(doc["fig"], str, path, "fig")
    _check(doc["fig"] != "", path, "fig must be non-empty")

    scale = doc["scale"]
    _check(isinstance(scale, dict), path, "scale must be an object")
    for field in ("orders", "mails"):
        _check(field in scale, path, f"scale missing '{field}'")
        _check_type(scale[field], int, path, f"scale.{field}")

    variants = doc["variants"]
    _check(isinstance(variants, list), path, "variants must be an array")
    _check(len(variants) > 0, path, "variants must be non-empty")
    seen = set()
    for i, v in enumerate(variants):
        vpath = f"{path}: variants[{i}]"
        _check(isinstance(v, dict), vpath, "must be an object")
        for field in ("name", "samples", "ms", "telemetry"):
            _check(field in v, vpath, f"missing required field '{field}'")
        _check_type(v["name"], str, vpath, "name")
        _check(v["name"] not in seen, vpath, f"duplicate variant '{v['name']}'")
        seen.add(v["name"])
        _check(isinstance(v["samples"], list) and len(v["samples"]) > 0, vpath,
               "samples must be a non-empty array")
        for s in v["samples"]:
            _check_type(s, (int, float), vpath, "samples[]")
        _check_type(v["ms"], (int, float), vpath, "ms")
        if v["telemetry"] is not None:
            _check(isinstance(v["telemetry"], dict), vpath,
                   "telemetry must be an object or null")
            for field, types in TELEMETRY_FIELDS.items():
                _check(field in v["telemetry"], vpath,
                       f"telemetry missing '{field}'")
                _check_type(v["telemetry"][field], types, vpath,
                            f"telemetry.{field}")

    _check(isinstance(doc["metrics"], dict), path, "metrics must be an object")
    for section in ("counters", "gauges", "histograms"):
        _check(section in doc["metrics"], path, f"metrics missing '{section}'")
        _check(isinstance(doc["metrics"][section], dict), path,
               f"metrics.{section} must be an object")


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        raise SchemaError(f"{path}: cannot read: {e}")
    except json.JSONDecodeError as e:
        raise SchemaError(f"{path}: malformed JSON: {e}")
    validate_report(doc, path)
    return doc


def merge(reports):
    """One trajectory document from validated per-figure reports."""
    figs = {}
    for doc in reports:
        fig = doc["fig"]
        if fig in figs:
            raise SchemaError(f"duplicate figure '{fig}' across input files")
        figs[fig] = doc
    scales = {json.dumps(d["scale"], sort_keys=True) for d in reports}
    if len(scales) > 1:
        raise SchemaError(
            "input files were produced at different scales: " +
            ", ".join(sorted(scales)))
    return {
        "schema_version": SCHEMA_VERSION,
        "scale": reports[0]["scale"],
        "figs": {fig: {"variants": doc["variants"], "metrics": doc["metrics"]}
                 for fig, doc in sorted(figs.items())},
        "num_variants": sum(len(d["variants"]) for d in reports),
    }


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("inputs", nargs="*", help="BENCH_<fig>.json files")
    ap.add_argument("--glob", metavar="DIR",
                    help="collect every BENCH_*.json under DIR")
    ap.add_argument("--out", default="BENCH_trajectory.json",
                    help="merged output path (default: %(default)s)")
    args = ap.parse_args(argv)

    inputs = list(args.inputs)
    if args.glob:
        inputs += sorted(glob.glob(os.path.join(args.glob, "BENCH_*.json")))
    if not inputs:
        print("collect_bench: no input files", file=sys.stderr)
        return 1

    try:
        reports = [load_report(p) for p in inputs]
        trajectory = merge(reports)
    except SchemaError as e:
        print(f"collect_bench: {e}", file=sys.stderr)
        return 1

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=1)
        f.write("\n")
    print(f"collect_bench: {len(reports)} figure(s), "
          f"{trajectory['num_variants']} variant(s) -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
