#!/usr/bin/env python3
"""Fail on dead intra-repo markdown links.

Scans every tracked *.md file for inline links/images ``[text](target)``,
resolves relative targets against the linking file's directory, and exits
non-zero listing every target that does not exist. External links
(http/https/mailto) are not fetched. Fragments are checked against the
target file's headings using GitHub's slug rules (lowercase, spaces to
hyphens, punctuation dropped).

Usage: scripts/check_markdown_links.py [repo_root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
SKIP_DIRS = {".git", "build", "third_party", "node_modules"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    return {slugify(m.group(1)) for m in HEADING_RE.finditer(text)}


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    for md in md_files(root):
        rel_md = os.path.relpath(md, root)
        with open(md, encoding="utf-8") as f:
            text = CODE_FENCE_RE.sub("", f.read())
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            target, _, fragment = target.partition("#")
            if not target:  # same-file fragment
                dest = md
            else:
                dest = os.path.normpath(os.path.join(os.path.dirname(md), target))
            if not os.path.exists(dest):
                errors.append(f"{rel_md}: dead link -> {m.group(1)}")
                continue
            if fragment and dest.endswith(".md") and slugify(fragment) not in anchors_of(dest):
                errors.append(f"{rel_md}: missing anchor -> {m.group(1)}")
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} dead markdown link(s)", file=sys.stderr)
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
